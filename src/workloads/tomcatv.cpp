/**
 * @file
 * tomcatv: mesh smoothing relaxation.
 *
 * Mesh generation relaxes coordinate grids toward smoothness. Each
 * pass applies a Gauss-Seidel Laplacian step to x/y coordinate grids,
 * with a cross-coupling term from x into y.
 */

#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"
#include "workloads/support.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kX = 0x2d1b8000;
constexpr Addr kY = 0x1a6e4000;
constexpr u32 kN = 64;
constexpr u64 kSeed = 0x70CA;

u32
passes(u32 scale)
{
    return 2 * scale;
}

struct Grids
{
    std::vector<double> x, y;
};

Grids
makeGrids()
{
    Grids g;
    g.x = smoothField(kN * kN, -1.0, 1.0, kSeed);
    g.y = smoothField(kN * kN, -1.0, 1.0, kSeed + 1);
    return g;
}

} // namespace

std::vector<u32>
referenceTomcatv(u32 scale)
{
    Grids g = makeGrids();
    double acc = 0.0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        acc = 0.0;
        for (u32 i = 1; i < kN - 1; ++i) {
            for (u32 j = 1; j < kN - 1; ++j) {
                const u32 idx = i * kN + j;
                const double xl = g.x[idx - 1], xr = g.x[idx + 1];
                const double xu = g.x[idx - kN], xd = g.x[idx + kN];
                const double xc = g.x[idx];
                double t = xl + xr;
                t = t + xu;
                t = t + xd;
                const double lapx = t - xc * 4.0;
                const double xn = xc + lapx * 0.05;
                g.x[idx] = xn;

                const double yl = g.y[idx - 1], yr = g.y[idx + 1];
                const double yu = g.y[idx - kN], yd = g.y[idx + kN];
                const double yc = g.y[idx];
                double s = yl + yr;
                s = s + yu;
                s = s + yd;
                const double lapy = s - yc * 4.0;
                const double cross = xr - xl;
                double yn = yc + lapy * 0.05;
                yn = yn + cross * 0.01;
                g.y[idx] = yn;

                acc = acc + xn;
                acc = acc + yn;
            }
        }
    }
    return {cvtfi(acc * 8.0)};
}

isa::Program
buildTomcatv(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("tomcatv");

    a.fli(f1, 4.0, r9);
    a.fli(f2, 0.05, r9);
    a.fli(f3, 0.01, r9);
    a.fli(f4, 8.0, r9);
    a.li(r28, static_cast<u32>(passes(scale)));

    constexpr s32 kRow = static_cast<s32>(kN * 8);

    a.label("pass");
    a.la(r1, kX + (kN + 1) * 8);
    a.la(r2, kY + (kN + 1) * 8);
    a.fli(f15, 0.0, r9);  // acc
    a.li(r4, kN - 2);

    a.label("row");
    a.li(r5, kN - 2);

    a.label("cell");
    // x relaxation.
    a.fld(f5, r1, -8);           // xl
    a.fld(f6, r1, 8);            // xr
    a.fld(f7, r1, -kRow);        // xu
    a.fld(f8, r1, kRow);         // xd
    a.fld(f9, r1, 0);            // xc
    a.fadd(f10, f5, f6);
    a.fadd(f10, f10, f7);
    a.fadd(f10, f10, f8);
    a.fmul(f11, f9, f1);
    a.fsub(f10, f10, f11);       // lapx
    a.fmul(f10, f10, f2);
    a.fadd(f10, f9, f10);        // xn
    a.fsd(f10, r1, 0);

    // y relaxation with cross term.
    a.fld(f11, r2, -8);
    a.fld(f12, r2, 8);
    a.fld(f13, r2, -kRow);
    a.fld(f14, r2, kRow);
    a.fld(f9, r2, 0);            // yc
    a.fadd(f11, f11, f12);
    a.fadd(f11, f11, f13);
    a.fadd(f11, f11, f14);
    a.fmul(f12, f9, f1);
    a.fsub(f11, f11, f12);       // lapy
    a.fsub(f12, f6, f5);         // cross = xr - xl
    a.fmul(f11, f11, f2);
    a.fadd(f11, f9, f11);
    a.fmul(f12, f12, f3);
    a.fadd(f11, f11, f12);       // yn
    a.fsd(f11, r2, 0);

    a.fadd(f15, f15, f10);
    a.fadd(f15, f15, f11);

    a.addi(r1, r1, 8);
    a.addi(r2, r2, 8);
    a.addi(r5, r5, -1);
    a.bgtz(r5, "cell");

    a.addi(r1, r1, 16);
    a.addi(r2, r2, 16);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "row");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.fmul(f15, f15, f4);
    a.cvtfi(r10, f15);
    a.out(r10);
    a.halt();

    isa::Program p = a.finish();
    const Grids g = makeGrids();
    p.addDoubles(kX, g.x);
    p.addDoubles(kY, g.y);
    return p;
}

} // namespace predbus::workloads
