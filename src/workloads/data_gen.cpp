#include "workloads/data_gen.h"

#include <cmath>

#include "common/rng.h"

namespace predbus::workloads
{

std::vector<u32>
randomWords(std::size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<u32> out(n);
    for (auto &w : out)
        w = rng.next32();
    return out;
}

std::vector<u32>
boundedWords(std::size_t n, u32 bound, u64 seed)
{
    Rng rng(seed);
    std::vector<u32> out(n);
    for (auto &w : out)
        w = static_cast<u32>(rng.below(bound));
    return out;
}

std::vector<double>
smoothField(std::size_t n, double lo, double hi, u64 seed)
{
    Rng rng(seed);
    const double p1 = rng.uniform(0.01, 0.05);
    const double p2 = rng.uniform(0.002, 0.01);
    const double ph1 = rng.uniform(0.0, 6.28);
    const double ph2 = rng.uniform(0.0, 6.28);
    std::vector<double> out(n);
    const double mid = 0.5 * (lo + hi);
    const double amp = 0.5 * (hi - lo);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(i);
        out[i] = mid + amp * 0.5 *
                           (std::sin(p1 * x + ph1) +
                            std::sin(p2 * x + ph2));
    }
    return out;
}

std::vector<double>
randomDoubles(std::size_t n, double lo, double hi, u64 seed)
{
    Rng rng(seed);
    std::vector<double> out(n);
    for (auto &d : out)
        d = rng.uniform(lo, hi);
    return out;
}

std::string
syntheticText(std::size_t n_bytes, u64 seed)
{
    static const char *kDict[] = {
        "the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
        "he", "was", "for", "on", "are", "as", "with", "his", "they",
        "at", "be", "this", "have", "from", "or", "one", "had", "by",
        "word", "but", "not", "what", "all", "were", "we", "when",
        "your", "can", "said", "there", "use", "an", "each", "which",
        "she", "do", "how", "their", "if", "will", "up", "other",
        "about", "out", "many", "then", "them", "these", "so", "some",
        "her", "would", "make", "like", "him", "into", "time", "has",
        "look", "two", "more", "write", "go", "see", "number", "no",
        "way", "could", "people", "my", "than", "first", "water",
        "been", "call", "who", "oil", "its", "now", "find", "long",
        "down", "day", "did", "get", "come", "made", "may", "part",
    };
    constexpr std::size_t kDictSize = std::size(kDict);
    Rng rng(seed);
    std::string out;
    out.reserve(n_bytes + 16);
    while (out.size() < n_bytes) {
        out += kDict[rng.zipf(kDictSize, 1.2)];
        out += ' ';
    }
    out.resize(n_bytes);
    return out;
}

} // namespace predbus::workloads
