/**
 * @file
 * ijpeg: integer 8x8 DCT-style butterflies with quantization.
 *
 * Image compression kernels transform 8x8 blocks with integer
 * butterfly networks and then quantize by shifts. Each pass runs a
 * row-wise butterfly + quantization over every block of a 64x64 image
 * in place, so the data evolves across passes.
 */

#include <array>
#include <vector>

#include "common/rng.h"
#include "isa/assembler.h"
#include "workloads/kernels.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kImg = 0x3b670000;
constexpr u32 kDim = 64;
constexpr u64 kSeed = 0x17E6;

u32
passes(u32 scale)
{
    return 4 * scale;
}

std::vector<u32>
makeImage()
{
    Rng rng(kSeed);
    std::vector<u32> img(kDim * kDim);
    for (auto &px : img)
        px = static_cast<u32>(rng.below(256));
    return img;
}

/** One row butterfly + quantization; mirrors the assembly exactly. */
void
rowKernel(u32 *row)
{
    const u32 a0 = row[0], a1 = row[1], a2 = row[2], a3 = row[3];
    const u32 a4 = row[4], a5 = row[5], a6 = row[6], a7 = row[7];
    const u32 s0 = a0 + a7, s1 = a1 + a6, s2 = a2 + a5, s3 = a3 + a4;
    const u32 d0 = a0 - a7, d1 = a1 - a6, d2 = a2 - a5, d3 = a3 - a4;
    const u32 t0 = s0 + s3, t1 = s1 + s2;
    const u32 t2 = s0 - s3, t3 = s1 - s2;
    row[0] = (t0 + t1) >> 1;
    row[1] = (d0 + (d1 >> 1)) >> 1;
    row[2] = (t2 + (t3 >> 1)) >> 2;
    row[3] = (d1 - (d2 >> 2)) >> 1;
    row[4] = (t0 - t1) >> 2;
    row[5] = (d2 + (d3 >> 1)) >> 2;
    row[6] = (t2 - t3) >> 3;
    row[7] = (d3 ^ d0) >> 3;
}

} // namespace

std::vector<u32>
referenceIjpeg(u32 scale)
{
    std::vector<u32> img = makeImage();
    u32 chk = 0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        for (u32 block_row = 0; block_row < kDim / 8; ++block_row) {
            for (u32 block_col = 0; block_col < kDim / 8; ++block_col) {
                for (u32 r = 0; r < 8; ++r) {
                    u32 *row = &img[(block_row * 8 + r) * kDim +
                                    block_col * 8];
                    rowKernel(row);
                    chk += row[0] ^ row[7];
                }
            }
        }
    }
    return {chk};
}

isa::Program
buildIjpeg(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("ijpeg");

    // Register plan: r1 row pointer, r2 block row, r3 block col,
    // r4 row-in-block, r5..r12 a0..a7 then reused, r11 checksum via
    // r26, temporaries r13..r25.
    a.la(r27, kImg);
    a.li(r26, 0);       // checksum
    a.li(r28, static_cast<u32>(passes(scale)));

    a.label("pass");
    a.li(r2, 0);        // block row
    a.label("brow");
    a.li(r3, 0);        // block col
    a.label("bcol");
    a.li(r4, 0);        // row within block
    a.label("row");
    // r1 = img + ((block_row*8 + row)*64 + block_col*8) * 4
    a.sll(r13, r2, 3);
    a.add(r13, r13, r4);
    a.sll(r13, r13, 6);
    a.sll(r14, r3, 3);
    a.add(r13, r13, r14);
    a.sll(r13, r13, 2);
    a.add(r1, r27, r13);

    a.lw(r5, r1, 0);
    a.lw(r6, r1, 4);
    a.lw(r7, r1, 8);
    a.lw(r8, r1, 12);
    a.lw(r9, r1, 16);
    a.lw(r10, r1, 20);
    a.lw(r11, r1, 24);
    a.lw(r12, r1, 28);

    // Sums and differences.
    a.add(r13, r5, r12);   // s0
    a.add(r14, r6, r11);   // s1
    a.add(r15, r7, r10);   // s2
    a.add(r16, r8, r9);    // s3
    a.sub(r17, r5, r12);   // d0
    a.sub(r18, r6, r11);   // d1
    a.sub(r19, r7, r10);   // d2
    a.sub(r20, r8, r9);    // d3
    a.add(r21, r13, r16);  // t0
    a.add(r22, r14, r15);  // t1
    a.sub(r23, r13, r16);  // t2
    a.sub(r24, r14, r15);  // t3

    // Outputs with quantizing shifts.
    a.add(r25, r21, r22);
    a.srl(r25, r25, 1);
    a.sw(r25, r1, 0);
    a.move(r5, r25);       // keep row[0] for the checksum

    a.srl(r25, r18, 1);
    a.add(r25, r17, r25);
    a.srl(r25, r25, 1);
    a.sw(r25, r1, 4);

    a.srl(r25, r24, 1);
    a.add(r25, r23, r25);
    a.srl(r25, r25, 2);
    a.sw(r25, r1, 8);

    a.srl(r25, r19, 2);
    a.sub(r25, r18, r25);
    a.srl(r25, r25, 1);
    a.sw(r25, r1, 12);

    a.sub(r25, r21, r22);
    a.srl(r25, r25, 2);
    a.sw(r25, r1, 16);

    a.srl(r25, r20, 1);
    a.add(r25, r19, r25);
    a.srl(r25, r25, 2);
    a.sw(r25, r1, 20);

    a.sub(r25, r23, r24);
    a.srl(r25, r25, 3);
    a.sw(r25, r1, 24);

    a.xor_(r25, r20, r17);
    a.srl(r25, r25, 3);
    a.sw(r25, r1, 28);

    // chk += row[0] ^ row[7]
    a.xor_(r25, r5, r25);
    a.add(r26, r26, r25);

    a.addi(r4, r4, 1);
    a.li(r13, 8);
    a.bne(r4, r13, "row");

    a.addi(r3, r3, 1);
    a.li(r13, kDim / 8);
    a.bne(r3, r13, "bcol");

    a.addi(r2, r2, 1);
    a.li(r13, kDim / 8);
    a.bne(r2, r13, "brow");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.out(r26);
    a.halt();

    isa::Program p = a.finish();
    p.addWords(kImg, makeImage());
    return p;
}

} // namespace predbus::workloads
