/**
 * @file
 * m88ksim: CPU interpreter fetch/decode/dispatch loop.
 *
 * Architecture simulators fetch encoded words, extract bit fields, and
 * dispatch on opcodes. This kernel interprets a buffer of 4096 fake
 * instructions against 32 fake registers held in memory, with a
 * data-dependent program counter so control flow varies.
 */

#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kProg = 0x1d2b0000;
constexpr Addr kRegs = 0x3529c000;
constexpr Addr kFrame = 0x7fff8100;
constexpr u32 kProgLen = 4096;
constexpr u32 kStepsPerPass = 8192;
constexpr u64 kSeed = 0x88;

u32
passes(u32 scale)
{
    return 2 * scale;
}

std::vector<u32>
makeProg()
{
    return randomWords(kProgLen, kSeed);
}

std::vector<u32>
makeRegs()
{
    return randomWords(32, kSeed + 1);
}

} // namespace

std::vector<u32>
referenceM88ksim(u32 scale)
{
    const std::vector<u32> prog = makeProg();
    std::vector<u32> regs = makeRegs();
    u32 chk = 0;
    u32 fpc = 0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        for (u32 step = 0; step < kStepsPerPass; ++step) {
            const u32 w = prog[fpc];
            const u32 op = w >> 28;
            const u32 rd = (w >> 23) & 31;
            const u32 rs1 = (w >> 18) & 31;
            const u32 rs2 = (w >> 13) & 31;
            const u32 imm = w & 0xffff;
            const u32 va = regs[rs1];
            const u32 vb = regs[rs2];
            u32 v;
            switch (op & 7) {
              case 0: v = va + vb; break;
              case 1: v = va - vb; break;
              case 2: v = va ^ vb; break;
              case 3: v = va | vb; break;
              case 4: v = va + imm; break;
              case 5: v = imm << 3; break;
              case 6: v = (va < vb) ? 1 : 0; break;
              default: v = va + (vb >> 2); break;
            }
            regs[rd] = v;
            chk ^= v;
            const u32 advance = (op & 8) ? ((v & 3) + 1) : 1;
            fpc = (fpc + advance) & (kProgLen - 1);
        }
    }
    return {chk, fpc};
}

isa::Program
buildM88ksim(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("m88ksim");

    // r13 prog base, r12 regs base, r1 fpc, r2 step counter,
    // r3 w, r4 op, r5 rd, r6 va, r7 vb, r8 imm, r9 v, r10 tmp,
    // r11 chk.
    a.la(r29, kFrame);
    a.la(r13, kProg);
    a.sw(r13, r29, 0);
    a.la(r12, kRegs);
    a.sw(r12, r29, 4);
    a.li(r1, 0);
    a.li(r11, 0);
    a.li(r28, static_cast<u32>(passes(scale)));

    a.label("pass");
    a.li(r2, kStepsPerPass);

    a.label("step");
    a.lw(r13, r29, 0);           // reload spilled prog base
    a.sll(r10, r1, 2);
    a.add(r10, r13, r10);
    a.lw(r3, r10, 0);            // w

    a.lw(r12, r29, 4);           // reload spilled regfile base
    a.srl(r4, r3, 28);           // op
    a.srl(r5, r3, 23);
    a.andi(r5, r5, 31);          // rd
    a.srl(r10, r3, 18);
    a.andi(r10, r10, 31);        // rs1
    a.sll(r10, r10, 2);
    a.add(r10, r12, r10);
    a.lw(r6, r10, 0);            // va
    a.srl(r10, r3, 13);
    a.andi(r10, r10, 31);        // rs2
    a.sll(r10, r10, 2);
    a.add(r10, r12, r10);
    a.lw(r7, r10, 0);            // vb
    a.andi(r8, r3, 0xffff);      // imm

    a.andi(r10, r4, 7);
    a.beq(r10, r0, "op_add");
    a.addi(r10, r10, -1);
    a.beq(r10, r0, "op_sub");
    a.addi(r10, r10, -1);
    a.beq(r10, r0, "op_xor");
    a.addi(r10, r10, -1);
    a.beq(r10, r0, "op_or");
    a.addi(r10, r10, -1);
    a.beq(r10, r0, "op_addi");
    a.addi(r10, r10, -1);
    a.beq(r10, r0, "op_lui");
    a.addi(r10, r10, -1);
    a.beq(r10, r0, "op_slt");
    a.srl(r9, r7, 2);            // default
    a.add(r9, r6, r9);
    a.j("op_done");
    a.label("op_add");
    a.add(r9, r6, r7);
    a.j("op_done");
    a.label("op_sub");
    a.sub(r9, r6, r7);
    a.j("op_done");
    a.label("op_xor");
    a.xor_(r9, r6, r7);
    a.j("op_done");
    a.label("op_or");
    a.or_(r9, r6, r7);
    a.j("op_done");
    a.label("op_addi");
    a.add(r9, r6, r8);
    a.j("op_done");
    a.label("op_lui");
    a.sll(r9, r8, 3);
    a.j("op_done");
    a.label("op_slt");
    a.sltu(r9, r6, r7);
    a.label("op_done");

    a.sll(r10, r5, 2);
    a.add(r10, r12, r10);
    a.sw(r9, r10, 0);            // regs[rd] = v
    a.xor_(r11, r11, r9);

    a.andi(r10, r4, 8);
    a.beq(r10, r0, "adv1");
    a.andi(r10, r9, 3);
    a.addi(r10, r10, 1);
    a.add(r1, r1, r10);
    a.j("adv_done");
    a.label("adv1");
    a.addi(r1, r1, 1);
    a.label("adv_done");
    a.andi(r1, r1, kProgLen - 1);

    a.addi(r2, r2, -1);
    a.bgtz(r2, "step");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.out(r11);
    a.out(r1);
    a.halt();

    isa::Program p = a.finish();
    p.addWords(kProg, makeProg());
    p.addWords(kRegs, makeRegs());
    return p;
}

} // namespace predbus::workloads
