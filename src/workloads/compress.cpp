/**
 * @file
 * compress: LZW-style hashing over synthetic English-like text.
 *
 * The SPEC95 `compress` kernel spends its time rolling a hash over
 * input bytes and probing/updating a code table. This kernel does the
 * same: for every input byte it updates a multiplicative hash, forms a
 * candidate code word from (hash, byte), and either counts a hit or
 * replaces the table entry.
 */

#include <string>
#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kText = 0x10038000;
constexpr Addr kTab = 0x2a4c4000;
constexpr Addr kFrame = 0x7fff8000;  // stack frame: spilled table base
constexpr u32 kTextLen = 8192;
constexpr u32 kTabMask = 4095;
constexpr u64 kSeed = 0xC0;

u32
passes(u32 scale)
{
    return 2 * scale;
}

} // namespace

std::vector<u32>
referenceCompress(u32 scale)
{
    const std::string text = syntheticText(kTextLen, kSeed);
    std::vector<u32> tab(kTabMask + 1, 0);
    u32 hits = 0;
    u32 h = 0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        for (u32 i = 0; i < kTextLen; ++i) {
            const u32 c = static_cast<u8>(text[i]);
            h = ((h << 5) - h + c) & kTabMask;
            const u32 code = (h << 8) ^ (c * 131);
            if (tab[h] == code)
                ++hits;
            else
                tab[h] = code;
        }
    }
    return {hits, h};
}

isa::Program
buildCompress(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("compress");

    a.la(r29, kFrame);
    a.la(r6, kTab);
    a.sw(r6, r29, 0);     // spill the table base (reloaded per byte)
    a.li(r7, 0);          // hits
    a.li(r4, 0);          // h
    a.li(r9, 131);
    a.li(r28, static_cast<u32>(passes(scale)));

    a.label("pass");
    a.la(r1, kText);
    a.li(r2, kTextLen);

    a.label("inner");
    a.lbu(r3, r1, 0);
    a.sll(r8, r4, 5);
    a.sub(r4, r8, r4);
    a.add(r4, r4, r3);
    a.andi(r4, r4, kTabMask);
    a.sll(r5, r4, 8);
    a.mul(r10, r3, r9);
    a.xor_(r5, r5, r10);
    a.lw(r6, r29, 0);     // reload spilled table base (compiled-code
                          // idiom: high register pressure)
    a.sll(r8, r4, 2);
    a.add(r8, r6, r8);
    a.lw(r10, r8, 0);
    a.beq(r10, r5, "hit");
    a.sw(r5, r8, 0);
    a.j("next");
    a.label("hit");
    a.addi(r7, r7, 1);
    a.label("next");
    a.addi(r1, r1, 1);
    a.addi(r2, r2, -1);
    a.bgtz(r2, "inner");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.out(r7);
    a.out(r4);
    a.halt();

    isa::Program p = a.finish();
    const std::string text = syntheticText(kTextLen, kSeed);
    p.addSegment(kText,
                 std::vector<u8>(text.begin(), text.end()));
    return p;
}

} // namespace predbus::workloads
