/**
 * @file
 * apsi: column physics with polynomial evaluation.
 *
 * Mesoscale weather codes evaluate pointwise physics parameterizations
 * (saturation curves and the like) over every grid cell. Each pass
 * walks a 64x64 temperature/moisture pair of grids evaluating a cubic
 * polynomial (Horner form) per cell and relaxing both fields.
 */

#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"
#include "workloads/support.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kT = 0x29e58000;
constexpr Addr kQ = 0x12b94000;
constexpr u32 kN = 64;
constexpr u64 kSeed = 0xA951;
constexpr Addr kLit = 0x7fff8500;  // literal pool (reloaded in-loop)

u32
passes(u32 scale)
{
    return 2 * scale;
}

std::vector<double>
makeT()
{
    return smoothField(kN * kN, 0.0, 1.0, kSeed);
}

std::vector<double>
makeQ()
{
    return smoothField(kN * kN, 0.0, 0.5, kSeed + 1);
}

} // namespace

std::vector<u32>
referenceApsi(u32 scale)
{
    std::vector<double> t = makeT();
    std::vector<double> q = makeQ();
    double acc = 0.0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        acc = 0.0;
        for (u32 idx = 0; idx < kN * kN; ++idx) {
            const double tv = t[idx];
            // Horner: e = c0 + tv*(c1 + tv*(c2 + tv*c3)).
            double e = tv * 0.05;
            e = e + 0.3;
            e = e * tv;
            e = e + 0.5;
            e = e * tv;
            e = e + 0.1;
            const double qn = q[idx] * 0.9 + e * 0.1;
            const double tn = tv + (qn - tv) * 0.001;
            q[idx] = qn;
            t[idx] = tn;
            acc = acc + qn;
        }
    }
    return {cvtfi(acc * 64.0)};
}

isa::Program
buildApsi(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("apsi");

    a.fli(f1, 0.05, r9);
    a.fli(f2, 0.3, r9);
    a.fli(f3, 0.5, r9);
    a.fli(f4, 0.1, r9);
    a.fli(f5, 0.9, r9);
    a.fli(f6, 0.001, r9);
    a.fli(f7, 64.0, r9);
    a.la(r29, kLit);
    a.li(r28, static_cast<u32>(passes(scale)));

    a.label("pass");
    a.la(r1, kT);
    a.la(r2, kQ);
    a.fli(f15, 0.0, r9);
    a.li(r4, kN * kN);

    a.label("cell");
    a.fld(f8, r1, 0);            // tv
    a.fmul(f9, f8, f1);
    a.fadd(f9, f9, f2);
    a.fmul(f9, f9, f8);
    a.fadd(f9, f9, f3);
    a.fmul(f9, f9, f8);
    a.fld(f4, r29, 0);           // reload 0.1 from the literal pool
    a.fadd(f9, f9, f4);          // e
    a.fld(f10, r2, 0);
    a.fmul(f10, f10, f5);
    a.fmul(f11, f9, f4);
    a.fadd(f10, f10, f11);       // qn
    a.fsub(f11, f10, f8);
    a.fmul(f11, f11, f6);
    a.fadd(f11, f8, f11);        // tn
    a.fsd(f10, r2, 0);
    a.fsd(f11, r1, 0);
    a.fadd(f15, f15, f10);
    a.addi(r1, r1, 8);
    a.addi(r2, r2, 8);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "cell");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.fmul(f15, f15, f7);
    a.cvtfi(r10, f15);
    a.out(r10);
    a.halt();

    isa::Program p = a.finish();
    p.addDoubles(kLit, {0.1});
    p.addDoubles(kT, makeT());
    p.addDoubles(kQ, makeQ());
    return p;
}

} // namespace predbus::workloads
