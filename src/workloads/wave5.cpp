/**
 * @file
 * wave5: particle-in-cell gather/scatter.
 *
 * Plasma codes push particles through a field grid: gather the field
 * at each particle's cell (a data-dependent index), update velocity
 * and position, and scatter charge back. Each pass pushes 1024
 * particles over a 256-cell field, then relaxes the field toward the
 * deposited charge.
 */

#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"
#include "workloads/support.h"

namespace predbus::workloads
{

namespace
{

constexpr u32 kParticles = 1024;
constexpr u32 kCells = 256;
constexpr Addr kX = 0x15f28000;   // positions
constexpr Addr kVx = 0x2c7b4000;  // velocities
constexpr Addr kField = 0x083dc000; // E field
constexpr Addr kCharge = 0x31e64000; // deposited charge
constexpr u64 kSeed = 0x3A5E;
constexpr Addr kLit = 0x7fff8c00;

u32
passes(u32 scale)
{
    return 4 * scale;
}

std::vector<double>
makePositions()
{
    return randomDoubles(kParticles, 0.0, 256.0, kSeed);
}

std::vector<double>
makeVelocities()
{
    return randomDoubles(kParticles, -1.0, 1.0, kSeed + 1);
}

std::vector<double>
makeField()
{
    return smoothField(kCells, -0.5, 0.5, kSeed + 2);
}

} // namespace

std::vector<u32>
referenceWave5(u32 scale)
{
    std::vector<double> x = makePositions();
    std::vector<double> vx = makeVelocities();
    std::vector<double> e = makeField();
    std::vector<double> ch(kCells, 0.0);
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        for (u32 c = 0; c < kCells; ++c)
            ch[c] = 0.0;
        for (u32 p = 0; p < kParticles; ++p) {
            const double xp = x[p];
            const u32 j = cvtfi(xp) & (kCells - 1);
            const double ej = e[j];
            const double vn = vx[p] + ej * 0.01;
            double xn = xp + vn * 0.1;
            if (xn >= 256.0)
                xn = xn - 256.0;
            if (xn < 0.0)
                xn = xn + 256.0;
            vx[p] = vn;
            x[p] = xn;
            ch[j] = ch[j] + 1.0;
        }
        for (u32 c = 0; c < kCells; ++c) {
            const double en = e[c] * 0.99 + (ch[c] - 4.0) * 0.001;
            e[c] = en;
        }
    }
    double acc = 0.0;
    for (u32 c = 0; c < kCells; ++c)
        acc = acc + e[c];
    double acc2 = 0.0;
    for (u32 p = 0; p < kParticles; p += 64)
        acc2 = acc2 + x[p];
    return {cvtfi(acc * 1024.0), cvtfi(acc2 * 16.0)};
}

isa::Program
buildWave5(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("wave5");

    a.fli(f1, 0.01, r9);
    a.fli(f2, 0.1, r9);
    a.fli(f3, 256.0, r9);
    a.fli(f4, 1.0, r9);
    a.fli(f5, 0.99, r9);
    a.fli(f6, 4.0, r9);
    a.fli(f7, 0.001, r9);
    a.fli(f13, 0.0, r9);
    a.fli(f14, 1024.0, r9);
    a.la(r29, kLit);
    a.li(r28, static_cast<u32>(passes(scale)));

    a.la(r14, kX);
    a.la(r15, kVx);
    a.la(r16, kField);
    a.la(r17, kCharge);

    a.label("pass");
    // Zero the charge array.
    a.move(r1, r17);
    a.li(r4, kCells);
    a.label("zero");
    a.fsd(f13, r1, 0);
    a.addi(r1, r1, 8);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "zero");

    // Particle push.
    a.move(r1, r14);             // x ptr
    a.move(r2, r15);             // vx ptr
    a.li(r4, kParticles);
    a.label("push");
    a.fld(f1, r29, 0);           // reload 0.01 from the literal pool
    a.fld(f8, r1, 0);            // xp
    a.cvtfi(r5, f8);
    a.andi(r5, r5, kCells - 1);  // j
    a.sll(r6, r5, 3);
    a.add(r7, r16, r6);
    a.fld(f9, r7, 0);            // e[j]
    a.fld(f10, r2, 0);           // vx
    a.fmul(f9, f9, f1);
    a.fadd(f10, f10, f9);        // vn
    a.fmul(f9, f10, f2);
    a.fadd(f8, f8, f9);          // xn
    a.fclt(r7, f8, f3);          // xn < 256 ?
    a.bne(r7, r0, "no_hi_wrap");
    a.fsub(f8, f8, f3);
    a.label("no_hi_wrap");
    a.fclt(r7, f8, f13);         // xn < 0 ?
    a.beq(r7, r0, "no_lo_wrap");
    a.fadd(f8, f8, f3);
    a.label("no_lo_wrap");
    a.fsd(f10, r2, 0);
    a.fsd(f8, r1, 0);
    a.add(r7, r17, r6);
    a.fld(f9, r7, 0);
    a.fadd(f9, f9, f4);
    a.fsd(f9, r7, 0);            // ch[j] += 1
    a.addi(r1, r1, 8);
    a.addi(r2, r2, 8);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "push");

    // Field relaxation.
    a.move(r1, r16);
    a.move(r2, r17);
    a.li(r4, kCells);
    a.label("relax");
    a.fld(f8, r1, 0);
    a.fmul(f8, f8, f5);
    a.fld(f9, r2, 0);
    a.fsub(f9, f9, f6);
    a.fmul(f9, f9, f7);
    a.fadd(f8, f8, f9);
    a.fsd(f8, r1, 0);
    a.addi(r1, r1, 8);
    a.addi(r2, r2, 8);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "relax");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    // acc over field.
    a.move(r1, r16);
    a.li(r4, kCells);
    a.fli(f8, 0.0, r9);
    a.label("acc_field");
    a.fld(f9, r1, 0);
    a.fadd(f8, f8, f9);
    a.addi(r1, r1, 8);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "acc_field");
    a.fmul(f8, f8, f14);
    a.cvtfi(r10, f8);
    a.out(r10);

    // acc2 over every 64th particle position.
    a.move(r1, r14);
    a.li(r4, kParticles / 64);
    a.fli(f8, 0.0, r9);
    a.label("acc_pos");
    a.fld(f9, r1, 0);
    a.fadd(f8, f8, f9);
    a.addi(r1, r1, 64 * 8);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "acc_pos");
    a.fli(f9, 16.0, r9);
    a.fmul(f8, f8, f9);
    a.cvtfi(r10, f8);
    a.out(r10);
    a.halt();

    isa::Program p = a.finish();
    p.addDoubles(kLit, {0.01});
    p.addDoubles(kX, makePositions());
    p.addDoubles(kVx, makeVelocities());
    p.addDoubles(kField, makeField());
    return p;
}

} // namespace predbus::workloads
