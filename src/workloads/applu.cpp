/**
 * @file
 * applu: SSOR forward/backward sweeps.
 *
 * LU-SSOR solvers sweep a grid forward with a lower-triangular update
 * and backward with an upper-triangular one; each point depends on the
 * just-updated neighbors, so the recurrence is serial (low ILP, like
 * the original applu). A small source term keeps the fixed point
 * nonzero.
 */

#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"
#include "workloads/support.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kGrid = 0x36b14000;
constexpr u32 kN = 64;
constexpr u64 kSeed = 0xAB1;
constexpr Addr kLit = 0x7fff8900;

u32
passes(u32 scale)
{
    return 2 * scale;
}

std::vector<double>
makeGrid()
{
    return smoothField(kN * kN, 0.2, 0.8, kSeed);
}

} // namespace

std::vector<u32>
referenceApplu(u32 scale)
{
    std::vector<double> v = makeGrid();
    double acc = 0.0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        // Forward sweep.
        for (u32 i = 1; i < kN; ++i) {
            for (u32 j = 1; j < kN; ++j) {
                const u32 idx = i * kN + j;
                const double nb = v[idx - 1] + v[idx - kN];
                double t = v[idx] + nb * 0.3;
                t = t * 0.6 + 0.01;
                v[idx] = t;
            }
        }
        // Backward sweep.
        acc = 0.0;
        for (u32 i = kN - 1; i-- > 0;) {
            for (u32 j = kN - 1; j-- > 0;) {
                const u32 idx = i * kN + j;
                const double nb = v[idx + 1] + v[idx + kN];
                double t = v[idx] + nb * 0.3;
                t = t * 0.6 + 0.01;
                v[idx] = t;
                acc = acc + t;
            }
        }
    }
    return {cvtfi(acc * 64.0)};
}

isa::Program
buildApplu(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("applu");

    a.fli(f1, 0.3, r9);
    a.fli(f2, 0.6, r9);
    a.fli(f3, 0.01, r9);
    a.fli(f4, 64.0, r9);
    a.la(r29, kLit);
    a.li(r28, static_cast<u32>(passes(scale)));

    constexpr s32 kRow = static_cast<s32>(kN * 8);

    a.label("pass");

    // Forward sweep: rows 1..63, cols 1..63 ascending.
    a.la(r1, kGrid + (kN + 1) * 8);
    a.li(r4, kN - 1);
    a.label("frow");
    a.li(r5, kN - 1);
    a.label("fcell");
    a.fld(f5, r1, -8);
    a.fld(f6, r1, -kRow);
    a.fadd(f5, f5, f6);          // nb
    a.fld(f6, r1, 0);
    a.fmul(f5, f5, f1);
    a.fadd(f6, f6, f5);
    a.fmul(f6, f6, f2);
    a.fld(f3, r29, 0);           // reload 0.01 from the literal pool
    a.fadd(f6, f6, f3);
    a.fsd(f6, r1, 0);
    a.addi(r1, r1, 8);
    a.addi(r5, r5, -1);
    a.bgtz(r5, "fcell");
    a.addi(r1, r1, 8);           // skip col 0 of next row
    a.addi(r4, r4, -1);
    a.bgtz(r4, "frow");

    // Backward sweep: rows kN-2..0, cols kN-2..0 descending.
    a.fli(f15, 0.0, r9);
    a.la(r1, kGrid + ((kN - 2) * kN + (kN - 2)) * 8);
    a.li(r4, kN - 1);
    a.label("brow");
    a.li(r5, kN - 1);
    a.label("bcell");
    a.fld(f5, r1, 8);
    a.fld(f6, r1, kRow);
    a.fadd(f5, f5, f6);
    a.fld(f6, r1, 0);
    a.fmul(f5, f5, f1);
    a.fadd(f6, f6, f5);
    a.fmul(f6, f6, f2);
    a.fld(f3, r29, 0);           // reload 0.01 from the literal pool
    a.fadd(f6, f6, f3);
    a.fsd(f6, r1, 0);
    a.fadd(f15, f15, f6);
    a.addi(r1, r1, -8);
    a.addi(r5, r5, -1);
    a.bgtz(r5, "bcell");
    a.addi(r1, r1, -8);          // skip col kN-1 of previous row
    a.addi(r4, r4, -1);
    a.bgtz(r4, "brow");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.fmul(f15, f15, f4);
    a.cvtfi(r10, f15);
    a.out(r10);
    a.halt();

    isa::Program p = a.finish();
    p.addDoubles(kLit, {0.01});
    p.addDoubles(kGrid, makeGrid());
    return p;
}

} // namespace predbus::workloads
