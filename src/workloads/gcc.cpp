/**
 * @file
 * gcc: IR DAG evaluation with per-node operation dispatch.
 *
 * The compiler spends its time walking pointer-linked IR structures
 * and branching on node kinds. This kernel evaluates a random DAG of
 * 16-byte nodes {op, left-offset, right-offset, value}: each pass
 * recomputes every node's value from its children through a small
 * op-dispatch branch tree.
 */

#include <vector>

#include "common/rng.h"
#include "isa/assembler.h"
#include "workloads/kernels.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kNodes = 0x33d20000;
constexpr Addr kFrame = 0x7fff8300;
constexpr u32 kNumNodes = 4096;
constexpr u64 kSeed = 0x6CC;

u32
passes(u32 scale)
{
    return 2 * scale;
}

struct Dag
{
    std::vector<u32> op, left, right, val;
};

Dag
makeDag()
{
    Rng rng(kSeed);
    Dag d;
    d.op.resize(kNumNodes);
    d.left.resize(kNumNodes);
    d.right.resize(kNumNodes);
    d.val.resize(kNumNodes);
    for (u32 i = 0; i < kNumNodes; ++i) {
        d.op[i] = static_cast<u32>(rng.below(8));
        d.left[i] = (i < 2) ? i : static_cast<u32>(rng.below(i));
        d.right[i] = (i < 2) ? i : static_cast<u32>(rng.below(i));
        d.val[i] = rng.next32();
    }
    return d;
}

u32
evalOp(u32 op, u32 vl, u32 vr, u32 index)
{
    u32 v;
    switch (op & 3) {
      case 0: v = vl + vr; break;
      case 1: v = vl - vr; break;
      case 2: v = vl ^ vr; break;
      default: v = (vl < vr) ? vl : vr; break;
    }
    if (op & 4)
        v += index;
    return v;
}

} // namespace

std::vector<u32>
referenceGcc(u32 scale)
{
    Dag d = makeDag();
    u32 chk = 0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        for (u32 i = 2; i < kNumNodes; ++i) {
            const u32 v = evalOp(d.op[i], d.val[d.left[i]],
                                 d.val[d.right[i]], i);
            d.val[i] = v;
            chk ^= v;
        }
    }
    return {chk};
}

isa::Program
buildGcc(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("gcc");

    a.la(r29, kFrame);
    a.la(r6, kNodes);
    a.sw(r6, r29, 0);
    a.li(r11, 0);                       // chk
    a.li(r28, static_cast<u32>(passes(scale)));

    a.label("pass");
    a.la(r1, kNodes + 32);              // node 2
    a.li(r2, kNumNodes - 2);
    a.li(r12, 2);                       // node index

    a.label("inner");
    a.lw(r6, r29, 0);                   // reload spilled node pool base
    a.lw(r3, r1, 0);                    // op
    a.lw(r4, r1, 4);                    // left byte offset
    a.lw(r5, r1, 8);                    // right byte offset
    a.add(r10, r6, r4);
    a.lw(r7, r10, 12);                  // vl
    a.add(r10, r6, r5);
    a.lw(r8, r10, 12);                  // vr
    a.andi(r10, r3, 3);
    a.beq(r10, r0, "c_add");
    a.addi(r10, r10, -1);
    a.beq(r10, r0, "c_sub");
    a.addi(r10, r10, -1);
    a.beq(r10, r0, "c_xor");
    // min (unsigned)
    a.sltu(r9, r7, r8);
    a.bne(r9, r0, "take_l");
    a.move(r9, r8);
    a.j("c_done");
    a.label("take_l");
    a.move(r9, r7);
    a.j("c_done");
    a.label("c_add");
    a.add(r9, r7, r8);
    a.j("c_done");
    a.label("c_sub");
    a.sub(r9, r7, r8);
    a.j("c_done");
    a.label("c_xor");
    a.xor_(r9, r7, r8);
    a.label("c_done");
    a.andi(r10, r3, 4);
    a.beq(r10, r0, "no_bias");
    a.add(r9, r9, r12);
    a.label("no_bias");
    a.sw(r9, r1, 12);
    a.xor_(r11, r11, r9);
    a.addi(r1, r1, 16);
    a.addi(r12, r12, 1);
    a.addi(r2, r2, -1);
    a.bgtz(r2, "inner");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.out(r11);
    a.halt();

    isa::Program p = a.finish();
    const Dag d = makeDag();
    std::vector<u32> words;
    words.reserve(kNumNodes * 4);
    for (u32 i = 0; i < kNumNodes; ++i) {
        words.push_back(d.op[i]);
        words.push_back(d.left[i] * 16);   // byte offsets, pointer-like
        words.push_back(d.right[i] * 16);
        words.push_back(d.val[i]);
    }
    p.addWords(kNodes, words);
    return p;
}

} // namespace predbus::workloads
