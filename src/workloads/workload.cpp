#include "workloads/workload.h"

#include "common/log.h"
#include "workloads/kernels.h"

namespace predbus::workloads
{

namespace
{

using Builder = isa::Program (*)(u32);
using Reference = std::vector<u32> (*)(u32);

struct Entry
{
    WorkloadInfo info;
    Builder build;
    Reference reference;
};

const std::vector<Entry> &
table()
{
    static const std::vector<Entry> entries = {
        {{"ijpeg", false, "integer 8x8 DCT butterflies + quantization"},
         buildIjpeg, referenceIjpeg},
        {{"m88ksim", false, "CPU interpreter: fetch/decode/dispatch"},
         buildM88ksim, referenceM88ksim},
        {{"go", false, "board scans with neighbor counting"},
         buildGo, referenceGo},
        {{"gcc", false, "IR DAG evaluation with op dispatch"},
         buildGcc, referenceGcc},
        {{"compress", false, "LZW-style hashing over text"},
         buildCompress, referenceCompress},
        {{"perl", false, "string hashing + associative table"},
         buildPerl, referencePerl},
        {{"li", false, "cons-cell list building and traversal"},
         buildLi, referenceLi},
        {{"hydro2d", true, "upwind flux sweeps on a 2D grid"},
         buildHydro2d, referenceHydro2d},
        {{"fpppp", true, "dense multi-term products, high ILP"},
         buildFpppp, referenceFpppp},
        {{"apsi", true, "column physics with polynomial evaluation"},
         buildApsi, referenceApsi},
        {{"applu", true, "SSOR forward/backward sweeps"},
         buildApplu, referenceApplu},
        {{"wave5", true, "particle-in-cell gather/scatter"},
         buildWave5, referenceWave5},
        {{"turb3d", true, "scaled FFT butterfly stages"},
         buildTurb3d, referenceTurb3d},
        {{"tomcatv", true, "mesh smoothing relaxation"},
         buildTomcatv, referenceTomcatv},
        {{"swim", true, "shallow-water 2D stencil"},
         buildSwim, referenceSwim},
        {{"su2cor", true, "complex matrix-vector products"},
         buildSu2cor, referenceSu2cor},
        {{"mgrid", true, "3D 7-point stencil relaxation"},
         buildMgrid, referenceMgrid},
    };
    return entries;
}

const Entry &
lookup(const std::string &name)
{
    for (const Entry &e : table())
        if (e.info.name == name)
            return e;
    fatal("unknown workload '", name, "'");
}

} // namespace

const std::vector<WorkloadInfo> &
all()
{
    static const std::vector<WorkloadInfo> infos = [] {
        std::vector<WorkloadInfo> out;
        for (const Entry &e : table())
            out.push_back(e.info);
        return out;
    }();
    return infos;
}

const std::vector<std::string> &
intNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const Entry &e : table())
            if (!e.info.is_fp)
                out.push_back(e.info.name);
        return out;
    }();
    return names;
}

const std::vector<std::string> &
fpNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const Entry &e : table())
            if (e.info.is_fp)
                out.push_back(e.info.name);
        return out;
    }();
    return names;
}

const WorkloadInfo &
info(const std::string &name)
{
    return lookup(name).info;
}

isa::Program
build(const std::string &name, u32 scale)
{
    if (scale == 0)
        fatal("workload scale must be nonzero");
    return lookup(name).build(scale);
}

std::vector<u32>
reference(const std::string &name, u32 scale)
{
    if (scale == 0)
        fatal("workload scale must be nonzero");
    return lookup(name).reference(scale);
}

} // namespace predbus::workloads
