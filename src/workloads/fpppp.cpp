/**
 * @file
 * fpppp: dense multi-term products with high ILP.
 *
 * Quantum chemistry two-electron kernels evaluate long arithmetic
 * expressions over a few streams with essentially no branches. Each
 * pass forms six pairwise products of four input streams per element,
 * combines them, stores the result, and slowly relaxes one stream so
 * values evolve across passes.
 */

#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"
#include "workloads/support.h"

namespace predbus::workloads
{

namespace
{

constexpr u32 kLen = 512;
constexpr Addr kA = 0x1f3a4000;
constexpr Addr kB = 0x30c58000;
constexpr Addr kC = 0x0b96c000;
constexpr Addr kD = 0x24e10000;
constexpr Addr kE = 0x399bc000;
constexpr u64 kSeed = 0xF4B4;
constexpr Addr kLit = 0x7fff8600;

u32
passes(u32 scale)
{
    return 12 * scale;
}

std::vector<double>
makeStream(u64 salt)
{
    return randomDoubles(kLen, -1.0, 1.0, kSeed + salt);
}

} // namespace

std::vector<u32>
referenceFpppp(u32 scale)
{
    std::vector<double> av = makeStream(0);
    const std::vector<double> bv = makeStream(1);
    const std::vector<double> cv = makeStream(2);
    const std::vector<double> dv = makeStream(3);
    std::vector<double> ev(kLen, 0.0);
    double acc = 0.0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        acc = 0.0;
        for (u32 i = 0; i < kLen; ++i) {
            const double x = av[i], y = bv[i], z = cv[i], w = dv[i];
            const double p1 = x * y;
            const double p2 = z * w;
            const double p3 = x * z;
            const double p4 = y * w;
            const double p5 = x * w;
            const double p6 = y * z;
            double e1 = p1 + p2;
            e1 = e1 - p3;
            double e2 = p4 - p5;
            e2 = e2 + p6;
            const double e = e1 * e2;
            ev[i] = e;
            av[i] = x * 0.999 + e1 * 0.001;
            acc = acc + e;
        }
    }
    return {cvtfi(acc * 1024.0)};
}

isa::Program
buildFpppp(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("fpppp");

    a.fli(f1, 0.999, r9);
    a.fli(f2, 0.001, r9);
    a.fli(f3, 1024.0, r9);
    a.la(r29, kLit);
    a.li(r28, static_cast<u32>(passes(scale)));

    a.label("pass");
    a.la(r1, kA);
    a.la(r2, kB);
    a.la(r3, kC);
    a.la(r4, kD);
    a.la(r5, kE);
    a.fli(f15, 0.0, r9);
    a.li(r6, kLen);

    a.label("cell");
    a.fld(f4, r1, 0);            // x
    a.fld(f5, r2, 0);            // y
    a.fld(f6, r3, 0);            // z
    a.fld(f7, r4, 0);            // w
    a.fmul(f8, f4, f5);          // p1
    a.fmul(f9, f6, f7);          // p2
    a.fmul(f10, f4, f6);         // p3
    a.fmul(f11, f5, f7);         // p4
    a.fmul(f12, f4, f7);         // p5
    a.fmul(f13, f5, f6);         // p6
    a.fadd(f8, f8, f9);          // e1 = p1+p2
    a.fsub(f8, f8, f10);         //      - p3
    a.fsub(f11, f11, f12);       // e2 = p4-p5
    a.fadd(f11, f11, f13);       //      + p6
    a.fmul(f9, f8, f11);         // e
    a.fsd(f9, r5, 0);
    a.fld(f1, r29, 0);           // reload 0.999 from the literal pool
    a.fmul(f10, f4, f1);
    a.fmul(f12, f8, f2);
    a.fadd(f10, f10, f12);
    a.fsd(f10, r1, 0);           // a[i] relaxed
    a.fadd(f15, f15, f9);

    a.addi(r1, r1, 8);
    a.addi(r2, r2, 8);
    a.addi(r3, r3, 8);
    a.addi(r4, r4, 8);
    a.addi(r5, r5, 8);
    a.addi(r6, r6, -1);
    a.bgtz(r6, "cell");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.fmul(f15, f15, f3);
    a.cvtfi(r10, f15);
    a.out(r10);
    a.halt();

    isa::Program p = a.finish();
    p.addDoubles(kLit, {0.999});
    p.addDoubles(kA, makeStream(0));
    p.addDoubles(kB, makeStream(1));
    p.addDoubles(kC, makeStream(2));
    p.addDoubles(kD, makeStream(3));
    return p;
}

} // namespace predbus::workloads
