/**
 * @file
 * su2cor: complex matrix-vector products with renormalization.
 *
 * Quantum-physics codes iterate complex linear algebra. Each pass
 * multiplies a 24x24 complex matrix into a complex vector, then
 * renormalizes the result by a data-dependent factor (one division per
 * element, as in the real code's projections).
 */

#include <cmath>
#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"
#include "workloads/support.h"

namespace predbus::workloads
{

namespace
{

constexpr u32 kN = 24;
constexpr Addr kM = 0x23f0c000;                  // 24x24 complex (re,im)
constexpr Addr kVec = 0x35d64000;                // 24 complex
constexpr Addr kW = 0x0e5a8000;                  // 24 complex scratch
constexpr u64 kSeed = 0x52C0;
constexpr Addr kFrame = 0x7fff8700;

u32
passes(u32 scale)
{
    return 12 * scale;
}

std::vector<double>
makeMatrix()
{
    return randomDoubles(kN * kN * 2, -1.0, 1.0, kSeed);
}

std::vector<double>
makeVector()
{
    return randomDoubles(kN * 2, -1.0, 1.0, kSeed + 1);
}

} // namespace

std::vector<u32>
referenceSu2cor(u32 scale)
{
    const std::vector<double> m = makeMatrix();
    std::vector<double> v = makeVector();
    std::vector<double> w(kN * 2, 0.0);
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        for (u32 i = 0; i < kN; ++i) {
            double wr = 0.0, wi = 0.0;
            for (u32 k = 0; k < kN; ++k) {
                const double ar = m[(i * kN + k) * 2];
                const double ai = m[(i * kN + k) * 2 + 1];
                const double br = v[k * 2];
                const double bi = v[k * 2 + 1];
                wr = wr + (ar * br - ai * bi);
                wi = wi + (ar * bi + ai * br);
            }
            w[i * 2] = wr;
            w[i * 2 + 1] = wi;
        }
        const double s = std::fabs(w[0]) + 0.5;
        for (u32 i = 0; i < kN; ++i) {
            v[i * 2] = w[i * 2] / s;
            v[i * 2 + 1] = w[i * 2 + 1] / s;
        }
    }
    double acc = 0.0;
    for (u32 i = 0; i < kN; ++i)
        acc = acc + v[i * 2];
    return {cvtfi(acc * 1024.0)};
}

isa::Program
buildSu2cor(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("su2cor");

    a.fli(f1, 0.5, r9);
    a.fli(f2, 1024.0, r9);
    a.la(r29, kFrame);
    a.la(r2, kVec);
    a.sw(r2, r29, 0);            // spill the vector base
    a.li(r28, static_cast<u32>(passes(scale)));

    a.label("pass");
    a.la(r1, kM);                // matrix row pointer
    a.la(r3, kW);                // w pointer
    a.li(r4, kN);                // i

    a.label("rowloop");
    a.fli(f5, 0.0, r9);          // wr
    a.fli(f6, 0.0, r9);          // wi
    a.li(r22, 0);                // v byte offset
    a.li(r5, kN);                // k

    a.label("dot");
    a.fld(f7, r1, 0);            // ar
    a.fld(f8, r1, 8);            // ai
    a.lw(r2, r29, 0);            // reload spilled vector base
    a.add(r2, r2, r22);
    a.fld(f9, r2, 0);            // br
    a.fld(f10, r2, 8);           // bi
    a.fmul(f11, f7, f9);         // ar*br
    a.fmul(f12, f8, f10);        // ai*bi
    a.fsub(f11, f11, f12);
    a.fadd(f5, f5, f11);         // wr
    a.fmul(f11, f7, f10);        // ar*bi
    a.fmul(f12, f8, f9);         // ai*br
    a.fadd(f11, f11, f12);
    a.fadd(f6, f6, f11);         // wi
    a.addi(r1, r1, 16);
    a.addi(r22, r22, 16);
    a.addi(r5, r5, -1);
    a.bgtz(r5, "dot");

    a.fsd(f5, r3, 0);
    a.fsd(f6, r3, 8);
    a.addi(r3, r3, 16);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "rowloop");

    // Renormalize: s = |w[0].re| + 0.5; v = w / s.
    a.la(r3, kW);
    a.fld(f7, r3, 0);
    a.fabs_(f7, f7);
    a.fadd(f7, f7, f1);          // s
    a.la(r2, kVec);
    a.li(r4, kN);
    a.label("norm");
    a.fld(f8, r3, 0);
    a.fdiv(f8, f8, f7);
    a.fsd(f8, r2, 0);
    a.fld(f8, r3, 8);
    a.fdiv(f8, f8, f7);
    a.fsd(f8, r2, 8);
    a.addi(r3, r3, 16);
    a.addi(r2, r2, 16);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "norm");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    // acc = sum of v real parts.
    a.la(r2, kVec);
    a.li(r4, kN);
    a.fli(f5, 0.0, r9);
    a.label("accum");
    a.fld(f8, r2, 0);
    a.fadd(f5, f5, f8);
    a.addi(r2, r2, 16);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "accum");
    a.fmul(f5, f5, f2);
    a.cvtfi(r10, f5);
    a.out(r10);
    a.halt();

    isa::Program p = a.finish();
    p.addDoubles(kM, makeMatrix());
    p.addDoubles(kVec, makeVector());
    return p;
}

} // namespace predbus::workloads
