#include "trace/trace_stats.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace predbus::trace
{

std::vector<double>
uniqueValueCdf(const std::vector<Word> &values)
{
    if (values.empty())
        return {};
    std::unordered_map<Word, u64> freq;
    freq.reserve(values.size() / 4);
    for (Word v : values)
        ++freq[v];
    std::vector<u64> counts;
    counts.reserve(freq.size());
    for (const auto &[value, count] : freq)
        counts.push_back(count);
    std::sort(counts.begin(), counts.end(), std::greater<>());

    std::vector<double> cdf(counts.size());
    const double total = static_cast<double>(values.size());
    u64 running = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        running += counts[i];
        cdf[i] = static_cast<double>(running) / total;
    }
    return cdf;
}

double
windowUniqueFraction(const std::vector<Word> &values, std::size_t window)
{
    if (window == 0 || values.size() < window)
        return 0.0;
    const std::size_t n_windows = values.size() / window;
    std::unordered_set<Word> seen;
    seen.reserve(window * 2);
    double sum = 0.0;
    for (std::size_t w = 0; w < n_windows; ++w) {
        seen.clear();
        for (std::size_t i = 0; i < window; ++i)
            seen.insert(values[w * window + i]);
        sum += static_cast<double>(seen.size()) /
               static_cast<double>(window);
    }
    return sum / static_cast<double>(n_windows);
}

std::size_t
uniqueValueCount(const std::vector<Word> &values)
{
    return std::unordered_set<Word>(values.begin(), values.end()).size();
}

} // namespace predbus::trace
