/**
 * @file
 * Statistical characterizations of bus value traces (paper §4.2).
 */

#ifndef PREDBUS_TRACE_TRACE_STATS_H
#define PREDBUS_TRACE_TRACE_STATS_H

#include <vector>

#include "common/types.h"

namespace predbus::trace
{

/**
 * Cumulative distribution of unique values by frequency (Fig 7):
 * result[k] = fraction of all trace values covered by the (k+1) most
 * frequent unique values. result.size() == number of unique values.
 */
std::vector<double> uniqueValueCdf(const std::vector<Word> &values);

/**
 * Average fraction of values that are unique within a window of
 * @p window values (Fig 8). Computed over consecutive non-overlapping
 * windows; the final partial window is ignored. Returns 0 when the
 * trace is shorter than one window.
 */
double windowUniqueFraction(const std::vector<Word> &values,
                            std::size_t window);

/** Number of distinct values in the trace. */
std::size_t uniqueValueCount(const std::vector<Word> &values);

} // namespace predbus::trace

#endif // PREDBUS_TRACE_TRACE_STATS_H
