/**
 * @file
 * Binary trace file IO and the trace cache.
 *
 * Bench binaries share simulator-generated traces through a cache
 * directory: the first binary to need a (workload, bus) trace runs the
 * simulator and saves it; later binaries load the file. Files are
 * keyed by workload, bus, and cycle budget, so changing the budget
 * regenerates.
 */

#ifndef PREDBUS_TRACE_TRACE_IO_H
#define PREDBUS_TRACE_TRACE_IO_H

#include <optional>
#include <string>

#include "trace/trace.h"

namespace predbus::trace
{

/** Which traced bus. Register and Memory are the paper's §4.1 buses;
 * Address is an extension: the memory *address* bus, the target of the
 * related-work encodings ([1,15] workzone/sector schemes); Writeback is
 * the result bus into the reorder buffer/register file (the abstract's
 * other "internal bus"). */
enum class BusKind
{
    Register,
    Memory,
    Address,
    Writeback,
};

/** Lowercase bus name used in cache file names and tables. */
const char *busName(BusKind kind);

/** Write @p trace to @p path (throws FatalError on IO failure).
 * The write is atomic: data goes to a temp file in the same directory
 * which is then renamed over @p path, so concurrent writers and
 * readers never observe a partial file. */
void saveTrace(const std::string &path, const ValueTrace &trace);

/** Read a trace; nullopt if the file is missing or malformed. */
std::optional<ValueTrace> loadTrace(const std::string &path);

} // namespace predbus::trace

#endif // PREDBUS_TRACE_TRACE_IO_H
