#include "trace/trace_source.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "obs/metrics.h"
#include "trace/trace_io.h"

namespace predbus::trace
{

namespace
{

// Streaming-read accounting (pre-registered for report stability).
obs::Counter &source_opens =
    obs::Registry::global().counter("trace.source.opens");
obs::Counter &source_bytes_read =
    obs::Registry::global().counter("trace.source.bytes_read");
obs::Counter &source_sort_fallbacks =
    obs::Registry::global().counter("trace.source.sort_fallbacks");

} // namespace

std::size_t
SpanTraceSource::read(std::span<Word> out)
{
    const std::size_t n =
        std::min(out.size(), values.size() - pos);
    std::copy_n(values.begin() + static_cast<std::ptrdiff_t>(pos), n,
                out.begin());
    pos += n;
    return n;
}

namespace
{

// Matches the on-disk record layout written by saveTrace.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kEventBytes = 8 + 4;
// Events per block read (~48 KB): batching the fread calls makes
// streaming faster than the event-at-a-time loader path.
constexpr std::size_t kBatchEvents = 4096;

void
parseEvent(const unsigned char *record, u64 &cycle, u32 &value)
{
    std::memcpy(&cycle, record, sizeof(cycle));
    std::memcpy(&value, record + sizeof(cycle), sizeof(value));
}

} // namespace

FileTraceSource::FileTraceSource(std::string path)
    : path(std::move(path))
{
    open();
    // A later event with an earlier cycle would change where *every*
    // event lands after the loader's stable sort, so out-of-order
    // files cannot be served incrementally at all. Detect that up
    // front with a cheap scan of the cycle column and fall back to
    // the sorting loader before anything is handed out.
    if (!scanIsTimeOrdered())
        materialize();
}

bool
FileTraceSource::scanIsTimeOrdered()
{
    std::vector<unsigned char> buf(kBatchEvents * kEventBytes);
    u64 prev = 0;
    bool first = true;
    for (std::size_t done = 0; done < count;) {
        const std::size_t batch =
            std::min(kBatchEvents, count - done);
        if (std::fread(buf.data(), kEventBytes, batch, file) != batch)
            fatal("short read from trace file '", path, "'");
        for (std::size_t i = 0; i < batch; ++i) {
            u64 cycle = 0;
            u32 value = 0;
            parseEvent(buf.data() + i * kEventBytes, cycle, value);
            if (!first && cycle < prev)
                return false;
            prev = cycle;
            first = false;
        }
        done += batch;
    }
    if (std::fseek(file, static_cast<long>(kHeaderBytes), SEEK_SET) !=
        0)
        fatal("cannot seek in trace file '", path, "'");
    return true;
}

FileTraceSource::~FileTraceSource()
{
    if (file)
        std::fclose(file);
}

void
FileTraceSource::open()
{
    source_opens.inc();
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '", path, "'");
    u32 magic = 0, version = 0;
    u64 n = 0;
    if (std::fread(&magic, sizeof(magic), 1, file) != 1 ||
        std::fread(&version, sizeof(version), 1, file) != 1 ||
        std::fread(&n, sizeof(n), 1, file) != 1 ||
        magic != 0x50425452u || version != 1) {
        std::fclose(file);
        file = nullptr;
        fatal("malformed trace file '", path, "'");
    }
    count = static_cast<std::size_t>(n);
    served = 0;
    last_cycle = 0;
}

void
FileTraceSource::materialize()
{
    // Out-of-order file: delegate to the sorting loader so the value
    // order matches ValueTrace::values().
    source_sort_fallbacks.inc();
    auto loaded = loadTrace(path);
    if (!loaded)
        fatal("malformed trace file '", path, "'");
    fallback =
        std::make_unique<VectorTraceSource>(loaded->values());
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

std::size_t
FileTraceSource::read(std::span<Word> out)
{
    if (fallback)
        return fallback->read(out);

    const std::size_t want =
        std::min(out.size(), count - served);
    std::vector<unsigned char> buf(
        std::min(want, kBatchEvents) * kEventBytes);
    for (std::size_t i = 0; i < want;) {
        const std::size_t batch = std::min(kBatchEvents, want - i);
        if (std::fread(buf.data(), kEventBytes, batch, file) != batch)
            fatal("short read from trace file '", path, "'");
        for (std::size_t k = 0; k < batch; ++k) {
            u64 cycle = 0;
            u32 value = 0;
            parseEvent(buf.data() + k * kEventBytes, cycle, value);
            last_cycle = cycle;
            out[i + k] = value;
        }
        i += batch;
    }
    served += want;
    source_bytes_read.inc(want * kEventBytes);
    return want;
}

void
FileTraceSource::rewind()
{
    if (fallback) {
        fallback->rewind();
        return;
    }
    if (std::fseek(file, static_cast<long>(kHeaderBytes), SEEK_SET) !=
        0)
        fatal("cannot seek in trace file '", path, "'");
    served = 0;
    last_cycle = 0;
    (void)kEventBytes;
}

std::vector<Word>
drain(TraceSource &source)
{
    std::vector<Word> all;
    if (const auto hint = source.sizeHint())
        all.reserve(*hint);
    Word buf[4096];
    for (;;) {
        const std::size_t got = source.read(buf);
        if (got == 0)
            break;
        all.insert(all.end(), buf, buf + got);
    }
    return all;
}

} // namespace predbus::trace
