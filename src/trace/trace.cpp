#include "trace/trace.h"

#include <algorithm>

namespace predbus::trace
{

void
ValueTrace::finalize()
{
    if (!sorted) {
        std::stable_sort(events.begin(), events.end(),
                         [](const BusEvent &a, const BusEvent &b) {
                             return a.cycle < b.cycle;
                         });
        sorted = true;
    }
}

std::vector<Word>
ValueTrace::values() const
{
    std::vector<Word> out;
    out.reserve(events.size());
    for (const BusEvent &e : events)
        out.push_back(e.value);
    return out;
}

void
ValueTrace::setRaw(std::vector<BusEvent> ev)
{
    events = std::move(ev);
    sorted = false;
}

} // namespace predbus::trace
