/**
 * @file
 * Bus value traces.
 *
 * A trace is the time-ordered sequence of 32-bit values posted onto a
 * bus. Between postings the bus holds its previous value, so wire
 * transitions occur only at postings; idle cycles carry no events.
 * This matches the paper's trace semantics (§4.1).
 */

#ifndef PREDBUS_TRACE_TRACE_H
#define PREDBUS_TRACE_TRACE_H

#include <vector>

#include "common/types.h"

namespace predbus::trace
{

/** One value appearing on a bus at a given cycle. */
struct BusEvent
{
    Cycle cycle = 0;
    Word value = 0;

    bool operator==(const BusEvent &other) const = default;
};

/**
 * A bus value trace. Events may be posted out of time order (the
 * simulator schedules memory values into the future); finalize() must
 * be called before reading.
 */
class ValueTrace
{
  public:
    /** Post @p value appearing on the bus at @p cycle. */
    void
    post(Cycle cycle, Word value)
    {
        events.push_back(BusEvent{cycle, value});
        sorted = sorted && (events.size() < 2 ||
                            events[events.size() - 2].cycle <= cycle);
    }

    /** Stable-sort events into time order. Idempotent. */
    void finalize();

    bool empty() const { return events.empty(); }
    std::size_t size() const { return events.size(); }

    const BusEvent &operator[](std::size_t i) const { return events[i]; }

    auto begin() const { return events.begin(); }
    auto end() const { return events.end(); }

    /** Just the value sequence (post-finalize order). */
    std::vector<Word> values() const;

    /** Direct access for IO. */
    const std::vector<BusEvent> &raw() const { return events; }
    void setRaw(std::vector<BusEvent> ev);

  private:
    std::vector<BusEvent> events;
    bool sorted = true;
};

} // namespace predbus::trace

#endif // PREDBUS_TRACE_TRACE_H
