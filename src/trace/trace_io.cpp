#include "trace/trace_io.h"

#include <cstdio>
#include <memory>
#include <vector>

#include <unistd.h>

#include "common/log.h"
#include "obs/metrics.h"

namespace predbus::trace
{

namespace
{

// Cache-write accounting: saves, and whether the atomic
// rename-into-place succeeded (pre-registered for report stability).
obs::Counter &io_saves =
    obs::Registry::global().counter("trace.io.saves");
obs::Counter &io_renames_ok =
    obs::Registry::global().counter("trace.io.renames_ok");
obs::Counter &io_renames_failed =
    obs::Registry::global().counter("trace.io.renames_failed");
obs::Counter &io_bytes_written =
    obs::Registry::global().counter("trace.io.bytes_written");

constexpr u32 kMagic = 0x50425452;  // "PBTR"
constexpr u32 kVersion = 1;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using File = std::unique_ptr<std::FILE, FileCloser>;

bool
writeU32(std::FILE *f, u32 v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool
writeU64(std::FILE *f, u64 v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool
readU32(std::FILE *f, u32 &v)
{
    return std::fread(&v, sizeof(v), 1, f) == 1;
}

bool
readU64(std::FILE *f, u64 &v)
{
    return std::fread(&v, sizeof(v), 1, f) == 1;
}

} // namespace

const char *
busName(BusKind kind)
{
    switch (kind) {
      case BusKind::Register: return "register";
      case BusKind::Memory: return "memory";
      case BusKind::Address: return "address";
      case BusKind::Writeback: return "writeback";
    }
    return "unknown";
}

void
saveTrace(const std::string &path, const ValueTrace &trace)
{
    // Write to a temp file in the same directory and atomically rename
    // it into place, so concurrent writers (ctest -j, parallel
    // experiment runs) can never expose a partially written cache file:
    // readers see either the old file, no file, or the complete one.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    io_saves.inc();
    {
        File f(std::fopen(tmp.c_str(), "wb"));
        if (!f)
            fatal("cannot write trace file '", tmp, "'");
        bool ok = writeU32(f.get(), kMagic) &&
                  writeU32(f.get(), kVersion) &&
                  writeU64(f.get(), trace.size());
        for (std::size_t i = 0; ok && i < trace.size(); ++i) {
            ok = writeU64(f.get(), trace[i].cycle) &&
                 writeU32(f.get(), trace[i].value);
        }
        if (!ok) {
            std::remove(tmp.c_str());
            fatal("short write to trace file '", tmp, "'");
        }
        io_bytes_written.inc(16 + 12 * trace.size());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        io_renames_failed.inc();
        std::remove(tmp.c_str());
        fatal("cannot rename trace file '", tmp, "' to '", path, "'");
    }
    io_renames_ok.inc();
}

std::optional<ValueTrace>
loadTrace(const std::string &path)
{
    File f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return std::nullopt;
    u32 magic = 0, version = 0;
    u64 count = 0;
    if (!readU32(f.get(), magic) || magic != kMagic ||
        !readU32(f.get(), version) || version != kVersion ||
        !readU64(f.get(), count))
        return std::nullopt;
    std::vector<BusEvent> events;
    events.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        BusEvent e;
        if (!readU64(f.get(), e.cycle) || !readU32(f.get(), e.value))
            return std::nullopt;
        events.push_back(e);
    }
    ValueTrace trace;
    trace.setRaw(std::move(events));
    trace.finalize();
    return trace;
}

} // namespace predbus::trace
