/**
 * @file
 * Chunked, streaming access to bus value traces.
 *
 * The experiment engine processes traces as a stream of fixed-size
 * chunks instead of one fully materialized vector, so multi-million
 * cycle captures need not fit in memory per consumer and parallel
 * experiments can share the on-disk cache without each holding a
 * private copy. The whole-vector path remains available as an adapter
 * (VectorTraceSource / drain).
 */

#ifndef PREDBUS_TRACE_TRACE_SOURCE_H
#define PREDBUS_TRACE_TRACE_SOURCE_H

#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/trace.h"

namespace predbus::trace
{

/**
 * A restartable stream of bus values in trace (time) order.
 *
 * Consumers call read() with a destination span until it returns 0;
 * rewind() restarts the stream from the beginning for another pass.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Fill @p out with the next values of the stream; returns how many
     * were written. 0 means end of stream.
     */
    virtual std::size_t read(std::span<Word> out) = 0;

    /** Restart the stream from the first value. */
    virtual void rewind() = 0;

    /** Total value count when known up front (files, vectors). */
    virtual std::optional<std::size_t> sizeHint() const
    {
        return std::nullopt;
    }
};

/** Adapter: stream over an in-memory value vector (not owned). */
class SpanTraceSource : public TraceSource
{
  public:
    explicit SpanTraceSource(std::span<const Word> values)
        : values(values)
    {
    }

    std::size_t read(std::span<Word> out) override;
    void rewind() override { pos = 0; }
    std::optional<std::size_t> sizeHint() const override
    {
        return values.size();
    }

  private:
    std::span<const Word> values;
    std::size_t pos = 0;
};

/** Adapter: stream over an owned value vector. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<Word> values)
        : owned(std::move(values)), span_source(owned)
    {
    }

    std::size_t read(std::span<Word> out) override
    {
        return span_source.read(out);
    }
    void rewind() override { span_source.rewind(); }
    std::optional<std::size_t> sizeHint() const override
    {
        return owned.size();
    }

  private:
    std::vector<Word> owned;
    SpanTraceSource span_source;
};

/**
 * Stream a .pbtr trace file in chunks without materializing it.
 *
 * Trace files are normally written in time order (the cache finalizes
 * before saving). The constructor verifies that with a cheap scan of
 * the cycle column; an out-of-order file transparently falls back to
 * loading and sorting whole, so the value order always matches
 * ValueTrace::values().
 */
class FileTraceSource : public TraceSource
{
  public:
    /** Throws FatalError if the file is missing or malformed. */
    explicit FileTraceSource(std::string path);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    std::size_t read(std::span<Word> out) override;
    void rewind() override;
    std::optional<std::size_t> sizeHint() const override
    {
        return count;
    }

  private:
    void open();
    /** One pass over the cycle column; leaves the file at event 0. */
    bool scanIsTimeOrdered();
    /** Load the entire file sorted (out-of-order fallback). */
    void materialize();

    std::string path;
    std::FILE *file = nullptr;
    std::size_t count = 0;     ///< events in the file
    std::size_t served = 0;    ///< values handed out since rewind
    u64 last_cycle = 0;        ///< order check while streaming
    std::unique_ptr<VectorTraceSource> fallback;
};

/** Read every (remaining) value of @p source into one vector. */
std::vector<Word> drain(TraceSource &source);

} // namespace predbus::trace

#endif // PREDBUS_TRACE_TRACE_SOURCE_H
