/**
 * @file
 * P32 disassembler. Output format matches what the text assembler
 * accepts, so disassemble/assemble round-trips.
 */

#include "isa/isa.h"

#include <sstream>

namespace predbus::isa
{

namespace
{

std::string
ireg(u8 n)
{
    return "r" + std::to_string(n);
}

std::string
freg(u8 n)
{
    return "f" + std::to_string(n);
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    using Op = Opcode;
    const OpInfo &info = opInfo(inst.op);
    std::ostringstream ss;
    ss << info.mnemonic << ' ';
    switch (inst.op) {
      case Op::SLL: case Op::SRL: case Op::SRA:
        ss << ireg(inst.rd) << ", " << ireg(inst.rt) << ", "
           << int{inst.shamt};
        break;
      case Op::SLLV: case Op::SRLV: case Op::SRAV:
        ss << ireg(inst.rd) << ", " << ireg(inst.rt) << ", "
           << ireg(inst.rs);
        break;
      case Op::ADD: case Op::SUB: case Op::MUL: case Op::DIV:
      case Op::REM: case Op::AND: case Op::OR: case Op::XOR:
      case Op::NOR: case Op::SLT: case Op::SLTU:
        ss << ireg(inst.rd) << ", " << ireg(inst.rs) << ", "
           << ireg(inst.rt);
        break;
      case Op::ADDI: case Op::SLTI: case Op::SLTIU:
      case Op::ANDI: case Op::ORI: case Op::XORI:
        ss << ireg(inst.rt) << ", " << ireg(inst.rs) << ", " << inst.imm;
        break;
      case Op::LUI:
        ss << ireg(inst.rt) << ", " << inst.imm;
        break;
      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU: case Op::LW:
      case Op::SB: case Op::SH: case Op::SW:
        ss << ireg(inst.rt) << ", " << inst.imm << '(' << ireg(inst.rs)
           << ')';
        break;
      case Op::FLD: case Op::FSD:
        ss << freg(inst.rt) << ", " << inst.imm << '(' << ireg(inst.rs)
           << ')';
        break;
      case Op::J: case Op::JAL:
        ss << "0x" << std::hex << (inst.target << 2);
        break;
      case Op::JR: case Op::OUT:
        ss << ireg(inst.rs);
        break;
      case Op::JALR:
        ss << ireg(inst.rd) << ", " << ireg(inst.rs);
        break;
      case Op::BEQ: case Op::BNE:
        ss << ireg(inst.rs) << ", " << ireg(inst.rt) << ", " << inst.imm;
        break;
      case Op::BLEZ: case Op::BGTZ: case Op::BLTZ: case Op::BGEZ:
        ss << ireg(inst.rs) << ", " << inst.imm;
        break;
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::FMIN: case Op::FMAX:
        ss << freg(inst.rd) << ", " << freg(inst.rs) << ", "
           << freg(inst.rt);
        break;
      case Op::FSQRT: case Op::FABS: case Op::FNEG: case Op::FMOV:
        ss << freg(inst.rd) << ", " << freg(inst.rs);
        break;
      case Op::CVTIF:
        ss << freg(inst.rd) << ", " << ireg(inst.rs);
        break;
      case Op::CVTFI:
        ss << ireg(inst.rd) << ", " << freg(inst.rs);
        break;
      case Op::FCLT: case Op::FCLE: case Op::FCEQ:
        ss << ireg(inst.rd) << ", " << freg(inst.rs) << ", "
           << freg(inst.rt);
        break;
      case Op::HALT:
        return info.mnemonic;
      default:
        break;
    }
    return ss.str();
}

} // namespace predbus::isa
