/**
 * @file
 * In-process assembler for P32 with a fluent C++ DSL.
 *
 * All workloads are written against this class. It supports forward
 * label references (branches and jumps are fixed up at finish()), the
 * usual pseudo-instructions (li, la, move, nop, fli), and a pooled
 * double-constant area for FP literals.
 *
 * Example:
 * @code
 *   Asm a("demo");
 *   a.li(r1, 10);
 *   a.label("loop");
 *   a.addi(r2, r2, 3);
 *   a.addi(r1, r1, -1);
 *   a.bgtz(r1, "loop");
 *   a.out(r2);
 *   a.halt();
 *   Program p = a.finish();
 * @endcode
 */

#ifndef PREDBUS_ISA_ASSEMBLER_H
#define PREDBUS_ISA_ASSEMBLER_H

#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "isa/program.h"

namespace predbus::isa
{

/** Type-safe integer register name. */
struct Reg
{
    u8 n = 0;
};

/** Type-safe FP register name. */
struct FReg
{
    u8 n = 0;
};

/** Register-name constants (r0..r31, f0..f31). */
namespace regs
{
#define PREDBUS_DECL_REG(i) \
    inline constexpr Reg r##i{i}; \
    inline constexpr FReg f##i{i};
PREDBUS_DECL_REG(0) PREDBUS_DECL_REG(1) PREDBUS_DECL_REG(2)
PREDBUS_DECL_REG(3) PREDBUS_DECL_REG(4) PREDBUS_DECL_REG(5)
PREDBUS_DECL_REG(6) PREDBUS_DECL_REG(7) PREDBUS_DECL_REG(8)
PREDBUS_DECL_REG(9) PREDBUS_DECL_REG(10) PREDBUS_DECL_REG(11)
PREDBUS_DECL_REG(12) PREDBUS_DECL_REG(13) PREDBUS_DECL_REG(14)
PREDBUS_DECL_REG(15) PREDBUS_DECL_REG(16) PREDBUS_DECL_REG(17)
PREDBUS_DECL_REG(18) PREDBUS_DECL_REG(19) PREDBUS_DECL_REG(20)
PREDBUS_DECL_REG(21) PREDBUS_DECL_REG(22) PREDBUS_DECL_REG(23)
PREDBUS_DECL_REG(24) PREDBUS_DECL_REG(25) PREDBUS_DECL_REG(26)
PREDBUS_DECL_REG(27) PREDBUS_DECL_REG(28) PREDBUS_DECL_REG(29)
PREDBUS_DECL_REG(30) PREDBUS_DECL_REG(31)
#undef PREDBUS_DECL_REG
} // namespace regs

/**
 * Assembles one program. Instructions append sequentially from
 * @p code_base; finish() resolves label fixups and emits the Program.
 */
class Asm
{
  public:
    explicit Asm(std::string name, Addr code_base = kDefaultCodeBase,
                 Addr pool_base = kDefaultDataBase - 0x10000);

    // ---- labels -------------------------------------------------------
    /** Define @p name at the current code position. */
    void label(const std::string &name);
    /** Byte address of the next instruction to be emitted. */
    Addr here() const;
    /** Byte address of a defined label (fatal if undefined). */
    Addr labelAddr(const std::string &name) const;

    // ---- shifts -------------------------------------------------------
    void sll(Reg rd, Reg rt, unsigned shamt);
    void srl(Reg rd, Reg rt, unsigned shamt);
    void sra(Reg rd, Reg rt, unsigned shamt);
    void sllv(Reg rd, Reg rt, Reg rs);
    void srlv(Reg rd, Reg rt, Reg rs);
    void srav(Reg rd, Reg rt, Reg rs);

    // ---- integer arithmetic/logic --------------------------------------
    void add(Reg rd, Reg rs, Reg rt);
    void sub(Reg rd, Reg rs, Reg rt);
    void mul(Reg rd, Reg rs, Reg rt);
    void div(Reg rd, Reg rs, Reg rt);
    void rem(Reg rd, Reg rs, Reg rt);
    void and_(Reg rd, Reg rs, Reg rt);
    void or_(Reg rd, Reg rs, Reg rt);
    void xor_(Reg rd, Reg rs, Reg rt);
    void nor(Reg rd, Reg rs, Reg rt);
    void slt(Reg rd, Reg rs, Reg rt);
    void sltu(Reg rd, Reg rs, Reg rt);
    void addi(Reg rt, Reg rs, s32 imm);
    void slti(Reg rt, Reg rs, s32 imm);
    void sltiu(Reg rt, Reg rs, s32 imm);
    void andi(Reg rt, Reg rs, u32 imm);
    void ori(Reg rt, Reg rs, u32 imm);
    void xori(Reg rt, Reg rs, u32 imm);
    void lui(Reg rt, u32 imm);

    // ---- memory ---------------------------------------------------------
    void lb(Reg rt, Reg rs, s32 offset);
    void lbu(Reg rt, Reg rs, s32 offset);
    void lh(Reg rt, Reg rs, s32 offset);
    void lhu(Reg rt, Reg rs, s32 offset);
    void lw(Reg rt, Reg rs, s32 offset);
    void sb(Reg rt, Reg rs, s32 offset);
    void sh(Reg rt, Reg rs, s32 offset);
    void sw(Reg rt, Reg rs, s32 offset);
    void fld(FReg ft, Reg rs, s32 offset);
    void fsd(FReg ft, Reg rs, s32 offset);

    // ---- control --------------------------------------------------------
    void j(const std::string &label);
    void jal(const std::string &label);
    void jr(Reg rs);
    void jalr(Reg rd, Reg rs);
    void beq(Reg rs, Reg rt, const std::string &label);
    void bne(Reg rs, Reg rt, const std::string &label);
    void blez(Reg rs, const std::string &label);
    void bgtz(Reg rs, const std::string &label);
    void bltz(Reg rs, const std::string &label);
    void bgez(Reg rs, const std::string &label);

    // ---- floating point ---------------------------------------------------
    void fadd(FReg fd, FReg fs, FReg ft);
    void fsub(FReg fd, FReg fs, FReg ft);
    void fmul(FReg fd, FReg fs, FReg ft);
    void fdiv(FReg fd, FReg fs, FReg ft);
    void fsqrt(FReg fd, FReg fs);
    void fabs_(FReg fd, FReg fs);
    void fneg(FReg fd, FReg fs);
    void fmov(FReg fd, FReg fs);
    void fmin(FReg fd, FReg fs, FReg ft);
    void fmax(FReg fd, FReg fs, FReg ft);
    void cvtif(FReg fd, Reg rs);
    void cvtfi(Reg rd, FReg fs);
    void fclt(Reg rd, FReg fs, FReg ft);
    void fcle(Reg rd, FReg fs, FReg ft);
    void fceq(Reg rd, FReg fs, FReg ft);

    // ---- harness ----------------------------------------------------------
    void halt();
    void out(Reg rs);

    // ---- pseudo-instructions ------------------------------------------------
    /** Load an arbitrary 32-bit constant (1-2 instructions). */
    void li(Reg rd, u32 value);
    /** Load an address (alias of li, reads better in workloads). */
    void la(Reg rd, Addr addr) { li(rd, addr); }
    void move(Reg rd, Reg rs);
    void nop();
    /**
     * Load a double literal via the constant pool:
     * allocates an 8-byte pool slot and emits li(scratch)+fld.
     */
    void fli(FReg fd, double value, Reg scratch);

    /** Emit a raw, pre-encoded instruction word. */
    void raw(u32 word);
    /** Emit a decoded instruction directly. */
    void emit(const Instruction &inst);

    /** Number of instructions emitted so far. */
    std::size_t size() const { return code.size(); }

    /** Resolve fixups and build the final Program. */
    Program finish();

  private:
    void branchTo(Opcode op, Reg rs, Reg rt, const std::string &label);

    std::string name;
    Addr code_base;
    Addr pool_base;
    std::vector<u32> code;
    std::map<std::string, u32> labels;   ///< label -> instruction index

    struct Fixup
    {
        u32 index;          ///< instruction needing patching
        std::string label;
        bool is_jump;       ///< J/JAL (absolute) vs branch (relative)
    };
    std::vector<Fixup> fixups;
    std::vector<double> pool;
    bool finished = false;
};

} // namespace predbus::isa

#endif // PREDBUS_ISA_ASSEMBLER_H
