#include "isa/asm_parser.h"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/log.h"
#include "isa/assembler.h"
#include "isa/isa.h"

namespace predbus::isa
{

namespace
{

/** One operand token: a register, an FP register, a number, a symbol,
 * or a memory reference imm(reg). */
struct Operand
{
    enum class Kind { IntReg, FpReg, Number, Symbol, Mem } kind;
    u8 reg = 0;
    s64 number = 0;
    double fnumber = 0.0;
    std::string symbol;
    // Mem: number is the offset, reg the base register.
};

class Parser
{
  public:
    Parser(const std::string &source, const std::string &name,
           Addr code_base)
        : source(source), a(name, code_base)
    {
    }

    Program
    run()
    {
        std::istringstream in(source);
        std::string line;
        while (std::getline(in, line)) {
            ++line_no;
            parseLine(line);
        }
        Program prog = a.finish();
        for (auto &seg : data_segments)
            prog.data.push_back(std::move(seg));
        return prog;
    }

  private:
    [[noreturn]] void
    error(const std::string &msg)
    {
        fatal("asm line ", line_no, ": ", msg);
    }

    static std::string
    strip(const std::string &s)
    {
        std::size_t b = 0, e = s.size();
        while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
            ++b;
        while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
            --e;
        return s.substr(b, e - b);
    }

    void
    parseLine(std::string line)
    {
        // Remove comments.
        for (char marker : {'#', ';'}) {
            const auto pos = line.find(marker);
            if (pos != std::string::npos)
                line.resize(pos);
        }
        line = strip(line);
        if (line.empty())
            return;

        // Leading labels (possibly several, possibly same line as insn).
        while (true) {
            const auto colon = line.find(':');
            if (colon == std::string::npos)
                break;
            const std::string head = strip(line.substr(0, colon));
            if (head.empty() || !isSymbol(head))
                break;
            a.label(head);
            line = strip(line.substr(colon + 1));
            if (line.empty())
                return;
        }

        if (line[0] == '.') {
            parseDirective(line);
            return;
        }
        parseInstruction(line);
    }

    static bool
    isSymbol(const std::string &s)
    {
        if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0])))
            return false;
        for (char c : s)
            if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
                return false;
        return true;
    }

    static std::vector<std::string>
    splitOperands(const std::string &s)
    {
        std::vector<std::string> out;
        std::string cur;
        for (char c : s) {
            if (c == ',') {
                out.push_back(strip(cur));
                cur.clear();
            } else {
                cur += c;
            }
        }
        cur = strip(cur);
        if (!cur.empty())
            out.push_back(cur);
        return out;
    }

    s64
    parseNumber(const std::string &tok)
    {
        try {
            std::size_t used = 0;
            const s64 v = std::stoll(tok, &used, 0);
            if (used != tok.size())
                error("bad number '" + tok + "'");
            return v;
        } catch (const std::exception &) {
            error("bad number '" + tok + "'");
        }
    }

    Operand
    parseOperand(const std::string &tok)
    {
        Operand op{};
        if (tok.empty())
            error("empty operand");
        // Memory reference: imm(rN) — detect trailing ')'.
        if (tok.back() == ')') {
            const auto open = tok.find('(');
            if (open == std::string::npos)
                error("bad memory operand '" + tok + "'");
            const std::string off = strip(tok.substr(0, open));
            const std::string base =
                strip(tok.substr(open + 1, tok.size() - open - 2));
            op.kind = Operand::Kind::Mem;
            op.number = off.empty() ? 0 : parseNumber(off);
            op.reg = parseRegName(base, 'r');
            return op;
        }
        if ((tok[0] == 'r' || tok[0] == 'f') && tok.size() >= 2 &&
            std::isdigit(static_cast<unsigned char>(tok[1]))) {
            op.kind = (tok[0] == 'r') ? Operand::Kind::IntReg
                                      : Operand::Kind::FpReg;
            op.reg = parseRegName(tok, tok[0]);
            return op;
        }
        if (std::isdigit(static_cast<unsigned char>(tok[0])) ||
            tok[0] == '-' || tok[0] == '+') {
            op.kind = Operand::Kind::Number;
            op.number = parseNumber(tok);
            return op;
        }
        if (isSymbol(tok)) {
            op.kind = Operand::Kind::Symbol;
            op.symbol = tok;
            return op;
        }
        error("unrecognized operand '" + tok + "'");
    }

    u8
    parseRegName(const std::string &tok, char prefix)
    {
        if (tok.size() < 2 || tok[0] != prefix)
            error("expected register, got '" + tok + "'");
        s64 n = 0;
        for (std::size_t i = 1; i < tok.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(tok[i])))
                error("expected register, got '" + tok + "'");
            n = n * 10 + (tok[i] - '0');
        }
        if (n > 31)
            error("register out of range '" + tok + "'");
        return static_cast<u8>(n);
    }

    void
    parseDirective(const std::string &line)
    {
        std::istringstream ss(line);
        std::string word;
        ss >> word;
        std::string rest;
        std::getline(ss, rest);
        rest = strip(rest);

        if (word == ".text") {
            in_data = false;
            return;
        }
        if (word == ".data") {
            in_data = true;
            data_segments.emplace_back();
            data_segments.back().base = rest.empty()
                ? kDefaultDataBase
                : static_cast<Addr>(parseNumber(rest));
            return;
        }
        if (!in_data && (word == ".word" || word == ".double" ||
                         word == ".space"))
            error(word + " outside a .data section");
        if (word == ".word") {
            for (const std::string &tok : splitOperands(rest)) {
                const u32 v = static_cast<u32>(parseNumber(tok));
                auto &bytes = data_segments.back().bytes;
                for (int b = 0; b < 4; ++b)
                    bytes.push_back(static_cast<u8>(v >> (8 * b)));
            }
            return;
        }
        if (word == ".double") {
            for (const std::string &tok : splitOperands(rest)) {
                double d = 0.0;
                try {
                    d = std::stod(tok);
                } catch (const std::exception &) {
                    error("bad double '" + tok + "'");
                }
                u64 raw;
                std::memcpy(&raw, &d, 8);
                auto &bytes = data_segments.back().bytes;
                for (int b = 0; b < 8; ++b)
                    bytes.push_back(static_cast<u8>(raw >> (8 * b)));
            }
            return;
        }
        if (word == ".space") {
            const s64 n = parseNumber(rest);
            if (n < 0)
                error(".space with negative size");
            auto &bytes = data_segments.back().bytes;
            bytes.insert(bytes.end(), static_cast<std::size_t>(n), 0);
            return;
        }
        error("unknown directive '" + word + "'");
    }

    Operand
    need(const std::vector<Operand> &ops, std::size_t i,
         Operand::Kind kind)
    {
        if (i >= ops.size())
            error("missing operand");
        if (ops[i].kind != kind) {
            // Allow a plain number where a memory operand with zero base
            // would be nonsense; no implicit conversions otherwise.
            error("operand " + std::to_string(i + 1) + " has wrong kind");
        }
        return ops[i];
    }

    void
    parseInstruction(const std::string &line)
    {
        std::istringstream ss(line);
        std::string mnemonic;
        ss >> mnemonic;
        std::string rest;
        std::getline(ss, rest);
        std::vector<Operand> ops;
        for (const std::string &tok : splitOperands(strip(rest)))
            ops.push_back(parseOperand(tok));

        using K = Operand::Kind;
        auto ir = [&](std::size_t i) { return Reg{need(ops, i, K::IntReg).reg}; };
        auto fr = [&](std::size_t i) { return FReg{need(ops, i, K::FpReg).reg}; };
        auto num = [&](std::size_t i) { return need(ops, i, K::Number).number; };
        auto mem = [&](std::size_t i) { return need(ops, i, K::Mem); };
        auto sym = [&](std::size_t i) { return need(ops, i, K::Symbol).symbol; };

        const std::string &m = mnemonic;
        // Pseudo-ops first.
        if (m == "li") { a.li(ir(0), static_cast<u32>(num(1))); return; }
        if (m == "la") { a.la(ir(0), static_cast<Addr>(num(1))); return; }
        if (m == "move") { a.move(ir(0), ir(1)); return; }
        if (m == "nop") { a.nop(); return; }

        if (m == "sll") { a.sll(ir(0), ir(1), static_cast<unsigned>(num(2))); return; }
        if (m == "srl") { a.srl(ir(0), ir(1), static_cast<unsigned>(num(2))); return; }
        if (m == "sra") { a.sra(ir(0), ir(1), static_cast<unsigned>(num(2))); return; }
        if (m == "sllv") { a.sllv(ir(0), ir(1), ir(2)); return; }
        if (m == "srlv") { a.srlv(ir(0), ir(1), ir(2)); return; }
        if (m == "srav") { a.srav(ir(0), ir(1), ir(2)); return; }
        if (m == "add") { a.add(ir(0), ir(1), ir(2)); return; }
        if (m == "sub") { a.sub(ir(0), ir(1), ir(2)); return; }
        if (m == "mul") { a.mul(ir(0), ir(1), ir(2)); return; }
        if (m == "div") { a.div(ir(0), ir(1), ir(2)); return; }
        if (m == "rem") { a.rem(ir(0), ir(1), ir(2)); return; }
        if (m == "and") { a.and_(ir(0), ir(1), ir(2)); return; }
        if (m == "or") { a.or_(ir(0), ir(1), ir(2)); return; }
        if (m == "xor") { a.xor_(ir(0), ir(1), ir(2)); return; }
        if (m == "nor") { a.nor(ir(0), ir(1), ir(2)); return; }
        if (m == "slt") { a.slt(ir(0), ir(1), ir(2)); return; }
        if (m == "sltu") { a.sltu(ir(0), ir(1), ir(2)); return; }
        if (m == "addi") { a.addi(ir(0), ir(1), static_cast<s32>(num(2))); return; }
        if (m == "slti") { a.slti(ir(0), ir(1), static_cast<s32>(num(2))); return; }
        if (m == "sltiu") { a.sltiu(ir(0), ir(1), static_cast<s32>(num(2))); return; }
        if (m == "andi") { a.andi(ir(0), ir(1), static_cast<u32>(num(2))); return; }
        if (m == "ori") { a.ori(ir(0), ir(1), static_cast<u32>(num(2))); return; }
        if (m == "xori") { a.xori(ir(0), ir(1), static_cast<u32>(num(2))); return; }
        if (m == "lui") { a.lui(ir(0), static_cast<u32>(num(1))); return; }

        if (m == "lb" || m == "lbu" || m == "lh" || m == "lhu" ||
            m == "lw" || m == "sb" || m == "sh" || m == "sw") {
            const Operand mo = mem(1);
            const Reg rt = ir(0);
            const Reg base{mo.reg};
            const s32 off = static_cast<s32>(mo.number);
            if (m == "lb") a.lb(rt, base, off);
            else if (m == "lbu") a.lbu(rt, base, off);
            else if (m == "lh") a.lh(rt, base, off);
            else if (m == "lhu") a.lhu(rt, base, off);
            else if (m == "lw") a.lw(rt, base, off);
            else if (m == "sb") a.sb(rt, base, off);
            else if (m == "sh") a.sh(rt, base, off);
            else a.sw(rt, base, off);
            return;
        }
        if (m == "fld" || m == "fsd") {
            const Operand mo = mem(1);
            const FReg ft = fr(0);
            if (m == "fld")
                a.fld(ft, Reg{mo.reg}, static_cast<s32>(mo.number));
            else
                a.fsd(ft, Reg{mo.reg}, static_cast<s32>(mo.number));
            return;
        }

        if (m == "j") { a.j(sym(0)); return; }
        if (m == "jal") { a.jal(sym(0)); return; }
        if (m == "jr") { a.jr(ir(0)); return; }
        if (m == "jalr") { a.jalr(ir(0), ir(1)); return; }
        if (m == "beq") { a.beq(ir(0), ir(1), sym(2)); return; }
        if (m == "bne") { a.bne(ir(0), ir(1), sym(2)); return; }
        if (m == "blez") { a.blez(ir(0), sym(1)); return; }
        if (m == "bgtz") { a.bgtz(ir(0), sym(1)); return; }
        if (m == "bltz") { a.bltz(ir(0), sym(1)); return; }
        if (m == "bgez") { a.bgez(ir(0), sym(1)); return; }

        if (m == "fadd") { a.fadd(fr(0), fr(1), fr(2)); return; }
        if (m == "fsub") { a.fsub(fr(0), fr(1), fr(2)); return; }
        if (m == "fmul") { a.fmul(fr(0), fr(1), fr(2)); return; }
        if (m == "fdiv") { a.fdiv(fr(0), fr(1), fr(2)); return; }
        if (m == "fmin") { a.fmin(fr(0), fr(1), fr(2)); return; }
        if (m == "fmax") { a.fmax(fr(0), fr(1), fr(2)); return; }
        if (m == "fsqrt") { a.fsqrt(fr(0), fr(1)); return; }
        if (m == "fabs") { a.fabs_(fr(0), fr(1)); return; }
        if (m == "fneg") { a.fneg(fr(0), fr(1)); return; }
        if (m == "fmov") { a.fmov(fr(0), fr(1)); return; }
        if (m == "cvtif") { a.cvtif(fr(0), ir(1)); return; }
        if (m == "cvtfi") { a.cvtfi(ir(0), fr(1)); return; }
        if (m == "fclt") { a.fclt(ir(0), fr(1), fr(2)); return; }
        if (m == "fcle") { a.fcle(ir(0), fr(1), fr(2)); return; }
        if (m == "fceq") { a.fceq(ir(0), fr(1), fr(2)); return; }

        if (m == "halt") { a.halt(); return; }
        if (m == "out") { a.out(ir(0)); return; }

        error("unknown mnemonic '" + m + "'");
    }

    const std::string &source;
    Asm a;
    int line_no = 0;
    bool in_data = false;
    std::vector<Segment> data_segments;
};

} // namespace

Program
assembleText(const std::string &source, const std::string &name,
             Addr code_base)
{
    Parser p(source, name, code_base);
    Program prog = p.run();
    prog.name = name;
    return prog;
}

Program
assembleFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open assembly file '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return assembleText(ss.str(), path);
}

} // namespace predbus::isa
