#include "isa/assembler.h"

#include "common/bitops.h"
#include "common/log.h"

namespace predbus::isa
{

Asm::Asm(std::string name, Addr code_base, Addr pool_base)
    : name(std::move(name)), code_base(code_base), pool_base(pool_base)
{
}

void
Asm::label(const std::string &label_name)
{
    if (labels.count(label_name))
        fatal("duplicate label '", label_name, "' in ", name);
    labels[label_name] = static_cast<u32>(code.size());
}

Addr
Asm::here() const
{
    return code_base + static_cast<Addr>(code.size() * 4);
}

Addr
Asm::labelAddr(const std::string &label_name) const
{
    auto it = labels.find(label_name);
    if (it == labels.end())
        fatal("undefined label '", label_name, "' in ", name);
    return code_base + it->second * 4;
}

void
Asm::emit(const Instruction &inst)
{
    panicIf(finished, "Asm::emit after finish()");
    code.push_back(encode(inst));
}

void
Asm::raw(u32 word)
{
    panicIf(finished, "Asm::raw after finish()");
    code.push_back(word);
}

namespace
{

Instruction
rtype(Opcode op, u8 rd, u8 rs, u8 rt, u8 shamt = 0)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    i.rt = rt;
    i.shamt = shamt;
    return i;
}

Instruction
itype(Opcode op, u8 rt, u8 rs, s32 imm)
{
    Instruction i;
    i.op = op;
    i.rt = rt;
    i.rs = rs;
    i.imm = imm;
    return i;
}

} // namespace

void Asm::sll(Reg rd, Reg rt, unsigned shamt)
{ emit(rtype(Opcode::SLL, rd.n, 0, rt.n, static_cast<u8>(shamt))); }
void Asm::srl(Reg rd, Reg rt, unsigned shamt)
{ emit(rtype(Opcode::SRL, rd.n, 0, rt.n, static_cast<u8>(shamt))); }
void Asm::sra(Reg rd, Reg rt, unsigned shamt)
{ emit(rtype(Opcode::SRA, rd.n, 0, rt.n, static_cast<u8>(shamt))); }
void Asm::sllv(Reg rd, Reg rt, Reg rs)
{ emit(rtype(Opcode::SLLV, rd.n, rs.n, rt.n)); }
void Asm::srlv(Reg rd, Reg rt, Reg rs)
{ emit(rtype(Opcode::SRLV, rd.n, rs.n, rt.n)); }
void Asm::srav(Reg rd, Reg rt, Reg rs)
{ emit(rtype(Opcode::SRAV, rd.n, rs.n, rt.n)); }

void Asm::add(Reg rd, Reg rs, Reg rt)
{ emit(rtype(Opcode::ADD, rd.n, rs.n, rt.n)); }
void Asm::sub(Reg rd, Reg rs, Reg rt)
{ emit(rtype(Opcode::SUB, rd.n, rs.n, rt.n)); }
void Asm::mul(Reg rd, Reg rs, Reg rt)
{ emit(rtype(Opcode::MUL, rd.n, rs.n, rt.n)); }
void Asm::div(Reg rd, Reg rs, Reg rt)
{ emit(rtype(Opcode::DIV, rd.n, rs.n, rt.n)); }
void Asm::rem(Reg rd, Reg rs, Reg rt)
{ emit(rtype(Opcode::REM, rd.n, rs.n, rt.n)); }
void Asm::and_(Reg rd, Reg rs, Reg rt)
{ emit(rtype(Opcode::AND, rd.n, rs.n, rt.n)); }
void Asm::or_(Reg rd, Reg rs, Reg rt)
{ emit(rtype(Opcode::OR, rd.n, rs.n, rt.n)); }
void Asm::xor_(Reg rd, Reg rs, Reg rt)
{ emit(rtype(Opcode::XOR, rd.n, rs.n, rt.n)); }
void Asm::nor(Reg rd, Reg rs, Reg rt)
{ emit(rtype(Opcode::NOR, rd.n, rs.n, rt.n)); }
void Asm::slt(Reg rd, Reg rs, Reg rt)
{ emit(rtype(Opcode::SLT, rd.n, rs.n, rt.n)); }
void Asm::sltu(Reg rd, Reg rs, Reg rt)
{ emit(rtype(Opcode::SLTU, rd.n, rs.n, rt.n)); }

void Asm::addi(Reg rt, Reg rs, s32 imm)
{ emit(itype(Opcode::ADDI, rt.n, rs.n, imm)); }
void Asm::slti(Reg rt, Reg rs, s32 imm)
{ emit(itype(Opcode::SLTI, rt.n, rs.n, imm)); }
void Asm::sltiu(Reg rt, Reg rs, s32 imm)
{ emit(itype(Opcode::SLTIU, rt.n, rs.n, imm)); }
void Asm::andi(Reg rt, Reg rs, u32 imm)
{ emit(itype(Opcode::ANDI, rt.n, rs.n, static_cast<s32>(imm & 0xffff))); }
void Asm::ori(Reg rt, Reg rs, u32 imm)
{ emit(itype(Opcode::ORI, rt.n, rs.n, static_cast<s32>(imm & 0xffff))); }
void Asm::xori(Reg rt, Reg rs, u32 imm)
{ emit(itype(Opcode::XORI, rt.n, rs.n, static_cast<s32>(imm & 0xffff))); }
void Asm::lui(Reg rt, u32 imm)
{ emit(itype(Opcode::LUI, rt.n, 0, static_cast<s32>(imm & 0xffff))); }

void Asm::lb(Reg rt, Reg rs, s32 offset)
{ emit(itype(Opcode::LB, rt.n, rs.n, offset)); }
void Asm::lbu(Reg rt, Reg rs, s32 offset)
{ emit(itype(Opcode::LBU, rt.n, rs.n, offset)); }
void Asm::lh(Reg rt, Reg rs, s32 offset)
{ emit(itype(Opcode::LH, rt.n, rs.n, offset)); }
void Asm::lhu(Reg rt, Reg rs, s32 offset)
{ emit(itype(Opcode::LHU, rt.n, rs.n, offset)); }
void Asm::lw(Reg rt, Reg rs, s32 offset)
{ emit(itype(Opcode::LW, rt.n, rs.n, offset)); }
void Asm::sb(Reg rt, Reg rs, s32 offset)
{ emit(itype(Opcode::SB, rt.n, rs.n, offset)); }
void Asm::sh(Reg rt, Reg rs, s32 offset)
{ emit(itype(Opcode::SH, rt.n, rs.n, offset)); }
void Asm::sw(Reg rt, Reg rs, s32 offset)
{ emit(itype(Opcode::SW, rt.n, rs.n, offset)); }
void Asm::fld(FReg ft, Reg rs, s32 offset)
{ emit(itype(Opcode::FLD, ft.n, rs.n, offset)); }
void Asm::fsd(FReg ft, Reg rs, s32 offset)
{ emit(itype(Opcode::FSD, ft.n, rs.n, offset)); }

void
Asm::j(const std::string &target)
{
    fixups.push_back({static_cast<u32>(code.size()), target, true});
    Instruction i;
    i.op = Opcode::J;
    emit(i);
}

void
Asm::jal(const std::string &target)
{
    fixups.push_back({static_cast<u32>(code.size()), target, true});
    Instruction i;
    i.op = Opcode::JAL;
    emit(i);
}

void Asm::jr(Reg rs) { emit(rtype(Opcode::JR, 0, rs.n, 0)); }
void Asm::jalr(Reg rd, Reg rs) { emit(rtype(Opcode::JALR, rd.n, rs.n, 0)); }

void
Asm::branchTo(Opcode op, Reg rs, Reg rt, const std::string &target)
{
    fixups.push_back({static_cast<u32>(code.size()), target, false});
    emit(itype(op, rt.n, rs.n, 0));
}

void Asm::beq(Reg rs, Reg rt, const std::string &l)
{ branchTo(Opcode::BEQ, rs, rt, l); }
void Asm::bne(Reg rs, Reg rt, const std::string &l)
{ branchTo(Opcode::BNE, rs, rt, l); }
void Asm::blez(Reg rs, const std::string &l)
{ branchTo(Opcode::BLEZ, rs, Reg{0}, l); }
void Asm::bgtz(Reg rs, const std::string &l)
{ branchTo(Opcode::BGTZ, rs, Reg{0}, l); }
void Asm::bltz(Reg rs, const std::string &l)
{ branchTo(Opcode::BLTZ, rs, Reg{0}, l); }
void Asm::bgez(Reg rs, const std::string &l)
{ branchTo(Opcode::BGEZ, rs, Reg{0}, l); }

void Asm::fadd(FReg fd, FReg fs, FReg ft)
{ emit(rtype(Opcode::FADD, fd.n, fs.n, ft.n)); }
void Asm::fsub(FReg fd, FReg fs, FReg ft)
{ emit(rtype(Opcode::FSUB, fd.n, fs.n, ft.n)); }
void Asm::fmul(FReg fd, FReg fs, FReg ft)
{ emit(rtype(Opcode::FMUL, fd.n, fs.n, ft.n)); }
void Asm::fdiv(FReg fd, FReg fs, FReg ft)
{ emit(rtype(Opcode::FDIV, fd.n, fs.n, ft.n)); }
void Asm::fsqrt(FReg fd, FReg fs)
{ emit(rtype(Opcode::FSQRT, fd.n, fs.n, 0)); }
void Asm::fabs_(FReg fd, FReg fs)
{ emit(rtype(Opcode::FABS, fd.n, fs.n, 0)); }
void Asm::fneg(FReg fd, FReg fs)
{ emit(rtype(Opcode::FNEG, fd.n, fs.n, 0)); }
void Asm::fmov(FReg fd, FReg fs)
{ emit(rtype(Opcode::FMOV, fd.n, fs.n, 0)); }
void Asm::fmin(FReg fd, FReg fs, FReg ft)
{ emit(rtype(Opcode::FMIN, fd.n, fs.n, ft.n)); }
void Asm::fmax(FReg fd, FReg fs, FReg ft)
{ emit(rtype(Opcode::FMAX, fd.n, fs.n, ft.n)); }
void Asm::cvtif(FReg fd, Reg rs)
{ emit(rtype(Opcode::CVTIF, fd.n, rs.n, 0)); }
void Asm::cvtfi(Reg rd, FReg fs)
{ emit(rtype(Opcode::CVTFI, rd.n, fs.n, 0)); }
void Asm::fclt(Reg rd, FReg fs, FReg ft)
{ emit(rtype(Opcode::FCLT, rd.n, fs.n, ft.n)); }
void Asm::fcle(Reg rd, FReg fs, FReg ft)
{ emit(rtype(Opcode::FCLE, rd.n, fs.n, ft.n)); }
void Asm::fceq(Reg rd, FReg fs, FReg ft)
{ emit(rtype(Opcode::FCEQ, rd.n, fs.n, ft.n)); }

void Asm::halt() { emit(rtype(Opcode::HALT, 0, 0, 0)); }
void Asm::out(Reg rs) { emit(rtype(Opcode::OUT, 0, rs.n, 0)); }

void
Asm::li(Reg rd, u32 value)
{
    const s32 sval = static_cast<s32>(value);
    if (sval >= -32768 && sval <= 32767) {
        addi(rd, Reg{0}, sval);
        return;
    }
    lui(rd, value >> 16);
    if (value & 0xffff)
        ori(rd, rd, value & 0xffff);
}

void
Asm::move(Reg rd, Reg rs)
{
    or_(rd, rs, Reg{0});
}

void
Asm::nop()
{
    emit(rtype(Opcode::SLL, 0, 0, 0, 0));
}

void
Asm::fli(FReg fd, double value, Reg scratch)
{
    const Addr slot = pool_base + static_cast<Addr>(pool.size() * 8);
    pool.push_back(value);
    la(scratch, slot);
    fld(fd, scratch, 0);
}

Program
Asm::finish()
{
    panicIf(finished, "Asm::finish called twice");
    finished = true;
    for (const Fixup &fx : fixups) {
        auto it = labels.find(fx.label);
        if (it == labels.end())
            fatal("undefined label '", fx.label, "' in ", name);
        const u32 target_index = it->second;
        Instruction inst = *decode(code[fx.index]);
        if (fx.is_jump) {
            const Addr byte_addr = code_base + target_index * 4;
            inst.target = byte_addr >> 2;
        } else {
            const s64 delta = static_cast<s64>(target_index) -
                              (static_cast<s64>(fx.index) + 1);
            if (delta < -32768 || delta > 32767)
                fatal("branch to '", fx.label, "' out of range in ", name);
            inst.imm = static_cast<s32>(delta);
        }
        code[fx.index] = encode(inst);
    }

    Program prog;
    prog.name = name;
    prog.code_base = code_base;
    prog.entry = code_base;
    prog.code = code;
    if (!pool.empty())
        prog.addDoubles(pool_base, pool);
    return prog;
}

} // namespace predbus::isa
