#include "isa/program.h"

#include <cstring>

namespace predbus::isa
{

void
Program::addWords(Addr base, const std::vector<u32> &words)
{
    std::vector<u8> bytes(words.size() * 4);
    for (std::size_t i = 0; i < words.size(); ++i) {
        const u32 w = words[i];
        bytes[i * 4 + 0] = static_cast<u8>(w);
        bytes[i * 4 + 1] = static_cast<u8>(w >> 8);
        bytes[i * 4 + 2] = static_cast<u8>(w >> 16);
        bytes[i * 4 + 3] = static_cast<u8>(w >> 24);
    }
    addSegment(base, std::move(bytes));
}

void
Program::addDoubles(Addr base, const std::vector<double> &values)
{
    std::vector<u8> bytes(values.size() * 8);
    for (std::size_t i = 0; i < values.size(); ++i) {
        u64 raw;
        std::memcpy(&raw, &values[i], 8);
        for (int b = 0; b < 8; ++b)
            bytes[i * 8 + b] = static_cast<u8>(raw >> (8 * b));
    }
    addSegment(base, std::move(bytes));
}

} // namespace predbus::isa
