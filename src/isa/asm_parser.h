/**
 * @file
 * Text assembler for P32 (.s syntax).
 *
 * Accepts the syntax emitted by disassemble() plus labels, pseudo-ops
 * and data directives:
 *
 * @code
 *   # comment
 *   .data 0x100000        ; switch to data emission at address
 *   .word 1, 2, 3
 *   .double 3.14
 *   .space 64             ; zero-filled bytes
 *   .text                 ; back to code
 *   li r1, 0x1234
 *   loop:
 *   addi r1, r1, -1
 *   bgtz r1, loop
 *   halt
 * @endcode
 */

#ifndef PREDBUS_ISA_ASM_PARSER_H
#define PREDBUS_ISA_ASM_PARSER_H

#include <string>

#include "isa/program.h"

namespace predbus::isa
{

/**
 * Assemble P32 source text into a Program.
 * Throws FatalError with a line number on syntax errors.
 */
Program assembleText(const std::string &source,
                     const std::string &name = "asm",
                     Addr code_base = kDefaultCodeBase);

/** Assemble a .s file from disk. */
Program assembleFile(const std::string &path);

} // namespace predbus::isa

#endif // PREDBUS_ISA_ASM_PARSER_H
