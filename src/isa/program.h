/**
 * @file
 * A loadable guest program: code image, data segments, entry point.
 */

#ifndef PREDBUS_ISA_PROGRAM_H
#define PREDBUS_ISA_PROGRAM_H

#include <string>
#include <vector>

#include "common/types.h"

namespace predbus::isa
{

/** Default load addresses used by the assembler and workloads. */
constexpr Addr kDefaultCodeBase = 0x00001000;
constexpr Addr kDefaultDataBase = 0x00100000;
constexpr Addr kDefaultStackTop = 0x7ffff000;

/** A contiguous initialized data region. */
struct Segment
{
    Addr base = 0;
    std::vector<u8> bytes;
};

/** A complete guest program image. */
struct Program
{
    std::string name;
    Addr code_base = kDefaultCodeBase;
    Addr entry = kDefaultCodeBase;
    std::vector<u32> code;          ///< encoded instructions
    std::vector<Segment> data;      ///< initialized data segments

    /** Append a data segment initialized with raw bytes. */
    void
    addSegment(Addr base, std::vector<u8> bytes)
    {
        data.push_back(Segment{base, std::move(bytes)});
    }

    /** Append a data segment of 32-bit words. */
    void addWords(Addr base, const std::vector<u32> &words);

    /** Append a data segment of doubles (little-endian IEEE754). */
    void addDoubles(Addr base, const std::vector<double> &values);
};

} // namespace predbus::isa

#endif // PREDBUS_ISA_PROGRAM_H
