/**
 * @file
 * P32 binary encodings: opcode tables, encode/decode.
 *
 * Format layout (MIPS-like):
 *   R-type: op[31:26] rs[25:21] rt[20:16] rd[15:11] shamt[10:6] funct[5:0]
 *   I-type: op[31:26] rs[25:21] rt[20:16] imm[15:0]
 *   J-type: op[31:26] target[25:0]      (word-granular absolute target)
 */

#include "isa/isa.h"

#include <array>

#include "common/bitops.h"
#include "common/log.h"

namespace predbus::isa
{

namespace
{

// Primary opcode field values.
constexpr u32 kOpRtype = 0;
constexpr u32 kOpRegimm = 1;
constexpr u32 kOpJ = 2;
constexpr u32 kOpJal = 3;
constexpr u32 kOpBeq = 4;
constexpr u32 kOpBne = 5;
constexpr u32 kOpBlez = 6;
constexpr u32 kOpBgtz = 7;
constexpr u32 kOpAddi = 8;
constexpr u32 kOpSlti = 10;
constexpr u32 kOpSltiu = 11;
constexpr u32 kOpAndi = 12;
constexpr u32 kOpOri = 13;
constexpr u32 kOpXori = 14;
constexpr u32 kOpLui = 15;
constexpr u32 kOpFp = 17;
constexpr u32 kOpLb = 32;
constexpr u32 kOpLh = 33;
constexpr u32 kOpLw = 35;
constexpr u32 kOpLbu = 36;
constexpr u32 kOpLhu = 37;
constexpr u32 kOpSb = 40;
constexpr u32 kOpSh = 41;
constexpr u32 kOpSw = 43;
constexpr u32 kOpFld = 53;
constexpr u32 kOpFsd = 61;

// R-type funct values.
constexpr u32 kFnSll = 0;
constexpr u32 kFnSrl = 2;
constexpr u32 kFnSra = 3;
constexpr u32 kFnSllv = 4;
constexpr u32 kFnSrlv = 6;
constexpr u32 kFnSrav = 7;
constexpr u32 kFnJr = 8;
constexpr u32 kFnJalr = 9;
constexpr u32 kFnHalt = 12;
constexpr u32 kFnOut = 13;
constexpr u32 kFnMul = 24;
constexpr u32 kFnDiv = 26;
constexpr u32 kFnRem = 27;
constexpr u32 kFnAdd = 32;
constexpr u32 kFnSub = 34;
constexpr u32 kFnAnd = 36;
constexpr u32 kFnOr = 37;
constexpr u32 kFnXor = 38;
constexpr u32 kFnNor = 39;
constexpr u32 kFnSlt = 42;
constexpr u32 kFnSltu = 43;

// FP funct values (primary opcode kOpFp).
constexpr u32 kFnFadd = 0;
constexpr u32 kFnFsub = 1;
constexpr u32 kFnFmul = 2;
constexpr u32 kFnFdiv = 3;
constexpr u32 kFnFsqrt = 4;
constexpr u32 kFnFabs = 5;
constexpr u32 kFnFneg = 6;
constexpr u32 kFnFmov = 7;
constexpr u32 kFnCvtif = 8;
constexpr u32 kFnCvtfi = 9;
constexpr u32 kFnFclt = 10;
constexpr u32 kFnFcle = 11;
constexpr u32 kFnFceq = 12;
constexpr u32 kFnFmin = 13;
constexpr u32 kFnFmax = 14;

constexpr std::size_t kNumOps = static_cast<std::size_t>(Opcode::NumOpcodes);

constexpr std::array<OpInfo, kNumOps>
buildOpTable()
{
    std::array<OpInfo, kNumOps> t{};
    auto set = [&t](Opcode op, const char *mn, FuClass fu, u8 lat,
                    bool ld = false, bool st = false, bool br = false,
                    bool jp = false, bool fp = false) {
        t[static_cast<std::size_t>(op)] =
            OpInfo{mn, fu, lat, ld, st, br, jp, fp};
    };
    using Op = Opcode;
    set(Op::SLL, "sll", FuClass::IntAlu, 1);
    set(Op::SRL, "srl", FuClass::IntAlu, 1);
    set(Op::SRA, "sra", FuClass::IntAlu, 1);
    set(Op::SLLV, "sllv", FuClass::IntAlu, 1);
    set(Op::SRLV, "srlv", FuClass::IntAlu, 1);
    set(Op::SRAV, "srav", FuClass::IntAlu, 1);
    set(Op::ADD, "add", FuClass::IntAlu, 1);
    set(Op::SUB, "sub", FuClass::IntAlu, 1);
    set(Op::MUL, "mul", FuClass::IntMul, 3);
    set(Op::DIV, "div", FuClass::IntDiv, 20);
    set(Op::REM, "rem", FuClass::IntDiv, 20);
    set(Op::AND, "and", FuClass::IntAlu, 1);
    set(Op::OR, "or", FuClass::IntAlu, 1);
    set(Op::XOR, "xor", FuClass::IntAlu, 1);
    set(Op::NOR, "nor", FuClass::IntAlu, 1);
    set(Op::SLT, "slt", FuClass::IntAlu, 1);
    set(Op::SLTU, "sltu", FuClass::IntAlu, 1);
    set(Op::ADDI, "addi", FuClass::IntAlu, 1);
    set(Op::SLTI, "slti", FuClass::IntAlu, 1);
    set(Op::SLTIU, "sltiu", FuClass::IntAlu, 1);
    set(Op::ANDI, "andi", FuClass::IntAlu, 1);
    set(Op::ORI, "ori", FuClass::IntAlu, 1);
    set(Op::XORI, "xori", FuClass::IntAlu, 1);
    set(Op::LUI, "lui", FuClass::IntAlu, 1);
    set(Op::LB, "lb", FuClass::MemRead, 1, true);
    set(Op::LBU, "lbu", FuClass::MemRead, 1, true);
    set(Op::LH, "lh", FuClass::MemRead, 1, true);
    set(Op::LHU, "lhu", FuClass::MemRead, 1, true);
    set(Op::LW, "lw", FuClass::MemRead, 1, true);
    set(Op::SB, "sb", FuClass::MemWrite, 1, false, true);
    set(Op::SH, "sh", FuClass::MemWrite, 1, false, true);
    set(Op::SW, "sw", FuClass::MemWrite, 1, false, true);
    set(Op::FLD, "fld", FuClass::MemRead, 1, true, false, false, false,
        true);
    set(Op::FSD, "fsd", FuClass::MemWrite, 1, false, true, false, false,
        true);
    set(Op::J, "j", FuClass::None, 1, false, false, false, true);
    set(Op::JAL, "jal", FuClass::None, 1, false, false, false, true);
    set(Op::JR, "jr", FuClass::IntAlu, 1, false, false, false, true);
    set(Op::JALR, "jalr", FuClass::IntAlu, 1, false, false, false, true);
    set(Op::BEQ, "beq", FuClass::IntAlu, 1, false, false, true);
    set(Op::BNE, "bne", FuClass::IntAlu, 1, false, false, true);
    set(Op::BLEZ, "blez", FuClass::IntAlu, 1, false, false, true);
    set(Op::BGTZ, "bgtz", FuClass::IntAlu, 1, false, false, true);
    set(Op::BLTZ, "bltz", FuClass::IntAlu, 1, false, false, true);
    set(Op::BGEZ, "bgez", FuClass::IntAlu, 1, false, false, true);
    set(Op::FADD, "fadd", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::FSUB, "fsub", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::FMUL, "fmul", FuClass::FpMul, 4, false, false, false, false,
        true);
    set(Op::FDIV, "fdiv", FuClass::FpDiv, 12, false, false, false, false,
        true);
    set(Op::FSQRT, "fsqrt", FuClass::FpDiv, 24, false, false, false, false,
        true);
    set(Op::FABS, "fabs", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::FNEG, "fneg", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::FMOV, "fmov", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::CVTIF, "cvtif", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::CVTFI, "cvtfi", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::FCLT, "fclt", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::FCLE, "fcle", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::FCEQ, "fceq", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::FMIN, "fmin", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::FMAX, "fmax", FuClass::FpAdd, 2, false, false, false, false,
        true);
    set(Op::HALT, "halt", FuClass::None, 1);
    set(Op::OUT, "out", FuClass::IntAlu, 1);
    return t;
}

constexpr std::array<OpInfo, kNumOps> kOpTable = buildOpTable();

struct REncoding { Opcode op; u32 funct; };

// R-type funct <-> opcode mapping (primary opcode 0).
constexpr REncoding kRtypeMap[] = {
    {Opcode::SLL, kFnSll},   {Opcode::SRL, kFnSrl},
    {Opcode::SRA, kFnSra},   {Opcode::SLLV, kFnSllv},
    {Opcode::SRLV, kFnSrlv}, {Opcode::SRAV, kFnSrav},
    {Opcode::JR, kFnJr},     {Opcode::JALR, kFnJalr},
    {Opcode::HALT, kFnHalt}, {Opcode::OUT, kFnOut},
    {Opcode::MUL, kFnMul},   {Opcode::DIV, kFnDiv},
    {Opcode::REM, kFnRem},   {Opcode::ADD, kFnAdd},
    {Opcode::SUB, kFnSub},   {Opcode::AND, kFnAnd},
    {Opcode::OR, kFnOr},     {Opcode::XOR, kFnXor},
    {Opcode::NOR, kFnNor},   {Opcode::SLT, kFnSlt},
    {Opcode::SLTU, kFnSltu},
};

// FP funct <-> opcode mapping (primary opcode kOpFp).
constexpr REncoding kFpMap[] = {
    {Opcode::FADD, kFnFadd},   {Opcode::FSUB, kFnFsub},
    {Opcode::FMUL, kFnFmul},   {Opcode::FDIV, kFnFdiv},
    {Opcode::FSQRT, kFnFsqrt}, {Opcode::FABS, kFnFabs},
    {Opcode::FNEG, kFnFneg},   {Opcode::FMOV, kFnFmov},
    {Opcode::CVTIF, kFnCvtif}, {Opcode::CVTFI, kFnCvtfi},
    {Opcode::FCLT, kFnFclt},   {Opcode::FCLE, kFnFcle},
    {Opcode::FCEQ, kFnFceq},   {Opcode::FMIN, kFnFmin},
    {Opcode::FMAX, kFnFmax},
};

struct IEncoding { Opcode op; u32 primary; bool zero_extend; };

// I-type primary opcode <-> opcode mapping (excluding REGIMM).
constexpr IEncoding kItypeMap[] = {
    {Opcode::BEQ, kOpBeq, false},   {Opcode::BNE, kOpBne, false},
    {Opcode::BLEZ, kOpBlez, false}, {Opcode::BGTZ, kOpBgtz, false},
    {Opcode::ADDI, kOpAddi, false}, {Opcode::SLTI, kOpSlti, false},
    {Opcode::SLTIU, kOpSltiu, false},
    {Opcode::ANDI, kOpAndi, true},  {Opcode::ORI, kOpOri, true},
    {Opcode::XORI, kOpXori, true},  {Opcode::LUI, kOpLui, true},
    {Opcode::LB, kOpLb, false},     {Opcode::LBU, kOpLbu, false},
    {Opcode::LH, kOpLh, false},     {Opcode::LHU, kOpLhu, false},
    {Opcode::LW, kOpLw, false},     {Opcode::SB, kOpSb, false},
    {Opcode::SH, kOpSh, false},     {Opcode::SW, kOpSw, false},
    {Opcode::FLD, kOpFld, false},   {Opcode::FSD, kOpFsd, false},
};

bool
isRtype(Opcode op)
{
    for (const auto &e : kRtypeMap)
        if (e.op == op)
            return true;
    return false;
}

bool
isFpRtype(Opcode op)
{
    for (const auto &e : kFpMap)
        if (e.op == op)
            return true;
    return false;
}

u32
rtypeFunct(Opcode op)
{
    for (const auto &e : kRtypeMap)
        if (e.op == op)
            return e.funct;
    panic("rtypeFunct: not an R-type opcode");
}

u32
fpFunct(Opcode op)
{
    for (const auto &e : kFpMap)
        if (e.op == op)
            return e.funct;
    panic("fpFunct: not an FP opcode");
}

const IEncoding *
itypeFor(Opcode op)
{
    for (const auto &e : kItypeMap)
        if (e.op == op)
            return &e;
    return nullptr;
}

const IEncoding *
itypeForPrimary(u32 primary)
{
    for (const auto &e : kItypeMap)
        if (e.primary == primary)
            return &e;
    return nullptr;
}

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    return kOpTable[static_cast<std::size_t>(op)];
}

u32
encode(const Instruction &inst)
{
    auto pack_r = [&](u32 primary, u32 funct) {
        return (primary << 26) | (u32{inst.rs} << 21) |
               (u32{inst.rt} << 16) | (u32{inst.rd} << 11) |
               (u32{inst.shamt} << 6) | funct;
    };

    if (isRtype(inst.op))
        return pack_r(kOpRtype, rtypeFunct(inst.op));
    if (isFpRtype(inst.op))
        return pack_r(kOpFp, fpFunct(inst.op));
    if (inst.op == Opcode::J || inst.op == Opcode::JAL) {
        const u32 primary = (inst.op == Opcode::J) ? kOpJ : kOpJal;
        return (primary << 26) | (inst.target & maskLow(26));
    }
    if (inst.op == Opcode::BLTZ || inst.op == Opcode::BGEZ) {
        const u32 rt_sel = (inst.op == Opcode::BLTZ) ? 0 : 1;
        return (kOpRegimm << 26) | (u32{inst.rs} << 21) | (rt_sel << 16) |
               (static_cast<u32>(inst.imm) & 0xffffu);
    }
    const IEncoding *ie = itypeFor(inst.op);
    panicIf(ie == nullptr, "encode: unhandled opcode");
    return (ie->primary << 26) | (u32{inst.rs} << 21) |
           (u32{inst.rt} << 16) | (static_cast<u32>(inst.imm) & 0xffffu);
}

std::optional<Instruction>
decode(u32 word)
{
    const u32 primary = word >> 26;
    Instruction inst;
    inst.rs = static_cast<u8>(bits(word, 21, 5));
    inst.rt = static_cast<u8>(bits(word, 16, 5));
    inst.rd = static_cast<u8>(bits(word, 11, 5));
    inst.shamt = static_cast<u8>(bits(word, 6, 5));

    if (primary == kOpRtype || primary == kOpFp) {
        const u32 funct = bits(word, 0, 6);
        const auto *map = (primary == kOpRtype) ? kRtypeMap : kFpMap;
        const std::size_t n = (primary == kOpRtype)
                                  ? std::size(kRtypeMap)
                                  : std::size(kFpMap);
        for (std::size_t i = 0; i < n; ++i) {
            if (map[i].funct == funct) {
                inst.op = map[i].op;
                return inst;
            }
        }
        return std::nullopt;
    }
    if (primary == kOpJ || primary == kOpJal) {
        inst.op = (primary == kOpJ) ? Opcode::J : Opcode::JAL;
        inst.rs = inst.rt = inst.rd = inst.shamt = 0;
        inst.target = static_cast<u32>(bits(word, 0, 26));
        return inst;
    }
    if (primary == kOpRegimm) {
        if (inst.rt == 0)
            inst.op = Opcode::BLTZ;
        else if (inst.rt == 1)
            inst.op = Opcode::BGEZ;
        else
            return std::nullopt;
        inst.rd = inst.shamt = 0;
        inst.imm = signExtend32(static_cast<u32>(bits(word, 0, 16)), 16);
        return inst;
    }
    const IEncoding *ie = itypeForPrimary(primary);
    if (ie == nullptr)
        return std::nullopt;
    inst.op = ie->op;
    inst.rd = inst.shamt = 0;
    const u32 raw = static_cast<u32>(bits(word, 0, 16));
    inst.imm = ie->zero_extend ? static_cast<s32>(raw)
                               : signExtend32(raw, 16);
    return inst;
}

std::optional<u8>
intDest(const Instruction &inst)
{
    using Op = Opcode;
    switch (inst.op) {
      case Op::SLL: case Op::SRL: case Op::SRA:
      case Op::SLLV: case Op::SRLV: case Op::SRAV:
      case Op::ADD: case Op::SUB: case Op::MUL:
      case Op::DIV: case Op::REM:
      case Op::AND: case Op::OR: case Op::XOR: case Op::NOR:
      case Op::SLT: case Op::SLTU:
      case Op::JALR:
        return inst.rd ? std::optional<u8>(inst.rd) : std::nullopt;
      case Op::ADDI: case Op::SLTI: case Op::SLTIU:
      case Op::ANDI: case Op::ORI: case Op::XORI: case Op::LUI:
      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU: case Op::LW:
        return inst.rt ? std::optional<u8>(inst.rt) : std::nullopt;
      case Op::JAL:
        return u8{31};
      case Op::CVTFI: case Op::FCLT: case Op::FCLE: case Op::FCEQ:
        return inst.rd ? std::optional<u8>(inst.rd) : std::nullopt;
      default:
        return std::nullopt;
    }
}

std::optional<u8>
fpDest(const Instruction &inst)
{
    using Op = Opcode;
    switch (inst.op) {
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::FSQRT: case Op::FABS: case Op::FNEG: case Op::FMOV:
      case Op::CVTIF: case Op::FMIN: case Op::FMAX:
        return inst.rd;
      case Op::FLD:
        return inst.rt;
      default:
        return std::nullopt;
    }
}

std::optional<u8>
firstIntSourceField(const Instruction &inst)
{
    using Op = Opcode;
    switch (inst.op) {
      case Op::SLL: case Op::SRL: case Op::SRA:
      case Op::SLLV: case Op::SRLV: case Op::SRAV:
        return inst.rt;
      case Op::ADD: case Op::SUB: case Op::MUL: case Op::DIV:
      case Op::REM: case Op::AND: case Op::OR: case Op::XOR:
      case Op::NOR: case Op::SLT: case Op::SLTU:
      case Op::BEQ: case Op::BNE:
      case Op::ADDI: case Op::SLTI: case Op::SLTIU:
      case Op::ANDI: case Op::ORI: case Op::XORI:
      case Op::BLEZ: case Op::BGTZ: case Op::BLTZ: case Op::BGEZ:
      case Op::JR: case Op::JALR: case Op::OUT:
      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU:
      case Op::LW: case Op::FLD: case Op::SB: case Op::SH:
      case Op::SW: case Op::FSD: case Op::CVTIF:
        return inst.rs;
      default:
        return std::nullopt;
    }
}

SourceRegs
sources(const Instruction &inst)
{
    using Op = Opcode;
    SourceRegs s;
    auto ri = [](u8 r) {
        return r ? std::optional<u8>(r) : std::nullopt;
    };
    switch (inst.op) {
      case Op::SLL: case Op::SRL: case Op::SRA:
        s.int0 = ri(inst.rt);
        break;
      case Op::SLLV: case Op::SRLV: case Op::SRAV:
        s.int0 = ri(inst.rt);
        s.int1 = ri(inst.rs);
        break;
      case Op::ADD: case Op::SUB: case Op::MUL: case Op::DIV:
      case Op::REM: case Op::AND: case Op::OR: case Op::XOR:
      case Op::NOR: case Op::SLT: case Op::SLTU:
      case Op::BEQ: case Op::BNE:
        s.int0 = ri(inst.rs);
        s.int1 = ri(inst.rt);
        break;
      case Op::ADDI: case Op::SLTI: case Op::SLTIU:
      case Op::ANDI: case Op::ORI: case Op::XORI:
      case Op::BLEZ: case Op::BGTZ: case Op::BLTZ: case Op::BGEZ:
      case Op::JR: case Op::JALR: case Op::OUT:
      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU:
      case Op::LW: case Op::FLD:
        s.int0 = ri(inst.rs);
        break;
      case Op::SB: case Op::SH: case Op::SW:
        s.int0 = ri(inst.rs);
        s.int1 = ri(inst.rt);
        break;
      case Op::FSD:
        s.int0 = ri(inst.rs);
        s.fp0 = inst.rt;
        break;
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::FMIN: case Op::FMAX:
      case Op::FCLT: case Op::FCLE: case Op::FCEQ:
        s.fp0 = inst.rs;
        s.fp1 = inst.rt;
        break;
      case Op::FSQRT: case Op::FABS: case Op::FNEG: case Op::FMOV:
      case Op::CVTFI:
        s.fp0 = inst.rs;
        break;
      case Op::CVTIF:
        s.int0 = ri(inst.rs);
        break;
      case Op::LUI: case Op::J: case Op::JAL: case Op::HALT:
        break;
      default:
        break;
    }
    return s;
}

} // namespace predbus::isa
