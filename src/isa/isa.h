/**
 * @file
 * The P32 instruction set: a MIPS-like 32-bit RISC used as the guest
 * ISA for the SimpleScalar-style simulator.
 *
 * P32 exists so the bus traces evaluated by the paper's coding schemes
 * come from a real pipelined machine running real programs. It has:
 *  - 32 integer registers r0..r31 (r0 hardwired to zero),
 *  - 32 double-precision FP registers f0..f31,
 *  - fixed 32-bit instruction encodings in three formats (R, I, J),
 *  - no branch delay slots,
 *  - HALT and OUT "harness" instructions for terminating programs and
 *    emitting validation values.
 */

#ifndef PREDBUS_ISA_ISA_H
#define PREDBUS_ISA_ISA_H

#include <optional>
#include <string>

#include "common/types.h"

namespace predbus::isa
{

/** Number of integer / FP architectural registers. */
constexpr unsigned kNumIntRegs = 32;
constexpr unsigned kNumFpRegs = 32;

/** All P32 operations. */
enum class Opcode : u8
{
    // Integer register-register.
    SLL, SRL, SRA, SLLV, SRLV, SRAV,
    ADD, SUB, MUL, DIV, REM,
    AND, OR, XOR, NOR, SLT, SLTU,
    // Integer register-immediate.
    ADDI, SLTI, SLTIU, ANDI, ORI, XORI, LUI,
    // Memory.
    LB, LBU, LH, LHU, LW, SB, SH, SW,
    FLD, FSD,
    // Control.
    J, JAL, JR, JALR,
    BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ,
    // Floating point (double precision).
    FADD, FSUB, FMUL, FDIV, FSQRT, FABS, FNEG, FMOV,
    CVTIF, CVTFI, FCLT, FCLE, FCEQ, FMIN, FMAX,
    // Harness.
    HALT, OUT,
    NumOpcodes,
};

/** Functional-unit class an operation executes on. */
enum class FuClass : u8
{
    IntAlu,
    IntMul,
    IntDiv,
    FpAdd,   // add/sub/compare/convert/abs/neg/mov/min/max
    FpMul,
    FpDiv,   // div and sqrt
    MemRead,
    MemWrite,
    None,    // control handled at dispatch (J, HALT, OUT)
};

/**
 * A decoded instruction. Register fields are architectural indices; the
 * per-opcode semantics determine whether a field names an integer or FP
 * register (see sources/destinations helpers below).
 */
struct Instruction
{
    Opcode op = Opcode::HALT;
    u8 rs = 0;     ///< first source register field
    u8 rt = 0;     ///< second source (or I-type destination) field
    u8 rd = 0;     ///< R-type destination field
    u8 shamt = 0;  ///< shift amount
    s32 imm = 0;   ///< sign- or zero-extended immediate (I-type)
    u32 target = 0; ///< word-granular absolute target (J-type)

    bool operator==(const Instruction &other) const = default;
};

/** Static properties of an opcode. */
struct OpInfo
{
    const char *mnemonic;
    FuClass fu;
    u8 latency;        ///< execution latency in cycles (pipelined FUs)
    bool is_load;
    bool is_store;
    bool is_branch;    ///< conditional branch
    bool is_jump;      ///< unconditional control transfer
    bool is_fp;        ///< touches the FP register file
};

/** Look up static properties for @p op. */
const OpInfo &opInfo(Opcode op);

/** Destination registers of @p inst. nullopt when none. */
std::optional<u8> intDest(const Instruction &inst);
std::optional<u8> fpDest(const Instruction &inst);

/**
 * The first integer register *field* the instruction reads, including
 * r0 (the register-file port drives its output for r0 reads too, so
 * the bus timing generator wants the field, not the dependency).
 */
std::optional<u8> firstIntSourceField(const Instruction &inst);

/** Source registers of @p inst (up to two of each file). */
struct SourceRegs
{
    std::optional<u8> int0, int1;
    std::optional<u8> fp0, fp1;
};
SourceRegs sources(const Instruction &inst);

/** Encode @p inst to its 32-bit machine word. */
u32 encode(const Instruction &inst);

/**
 * Decode a machine word. Returns nullopt for illegal encodings
 * (unknown opcode/funct values).
 */
std::optional<Instruction> decode(u32 word);

/** Human-readable disassembly, e.g. "add r3, r1, r2". */
std::string disassemble(const Instruction &inst);

} // namespace predbus::isa

#endif // PREDBUS_ISA_ISA_H
