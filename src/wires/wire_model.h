/**
 * @file
 * Distributed-RC wire model with optimal repeater insertion
 * (paper §3, Figs 4-6, Table 1).
 *
 * Buffered wires use the Bakoglu optimal repeater design: count
 * k = sqrt(0.4 R C / 0.7 R0 C0), size h = sqrt(R0 C / R C0) (see the
 * paper's refs [2,3,12,17]). The repeater capacitance is folded into
 * the effective substrate capacitance, which is what reduces the
 * effective λ from ~14 (bare wire) to ~0.6 (buffered) as in Table 1.
 */

#ifndef PREDBUS_WIRES_WIRE_MODEL_H
#define PREDBUS_WIRES_WIRE_MODEL_H

#include "common/types.h"
#include "wires/technology.h"

namespace predbus::wires
{

/** Result of optimal repeater sizing for one wire. */
struct RepeaterDesign
{
    u32 count = 0;          ///< number of repeaters along the wire
    double size = 0.0;      ///< width, multiples of a minimum inverter
    double cap_total = 0.0; ///< switched repeater capacitance (F)
};

/** Bakoglu-optimal repeaters for a wire of @p length_mm. */
RepeaterDesign optimalRepeaters(const Technology &tech, double length_mm);

/**
 * Energy/delay/λ for one wire of a bus at a given length. Energy
 * follows the paper's Eq. 1: E = E_tr * (tau + lambda * kappa), where
 * E_tr is the cost of one self-transition and lambda the coupling
 * ratio.
 */
class WireModel
{
  public:
    WireModel(const Technology &tech, double length_mm, bool buffered);

    const Technology &tech() const { return technology; }
    double lengthMm() const { return length_mm; }
    bool buffered() const { return is_buffered; }
    const RepeaterDesign &repeaters() const { return design; }

    /** Effective λ = CI / CS_eff (Table 1). */
    double effectiveLambda() const;

    /** Energy (J) of one self-transition event (CS_eff · V² · L). */
    double energyPerTransition() const;

    /** Energy (J) of one coupling event (CI · V² · L). */
    double energyPerCoupling() const;

    /** Total energy (J) for tau self and kappa coupling events. */
    double energy(u64 tau, u64 kappa) const;

    /**
     * Energy (J) of an isolated transition with both neighbors quiet
     * — the quantity plotted in Fig 5 ((CS_eff + 2 CI) V² L).
     */
    double isolatedTransitionEnergy() const;

    /** End-to-end propagation delay (s) — Fig 6. */
    double delay() const;

  private:
    Technology technology;
    double length_mm;
    bool is_buffered;
    RepeaterDesign design;
    double cs_eff;    ///< F/mm including repeater loading
};

} // namespace predbus::wires

#endif // PREDBUS_WIRES_WIRE_MODEL_H
