#include "wires/technology.h"

#include "common/log.h"

namespace predbus::wires
{

// Calibration targets (see DESIGN.md):
//  - Table 1 unbuffered λ: 14.0 / 16.6 / 14.5;
//  - Table 1 buffered λ (0.670 / 0.576 / 0.591) emerges from the
//    repeater capacitance computed by the repeater model;
//  - Fig 5: 30mm unbuffered wire energy ~2-2.6pJ at 0.13um, lower for
//    smaller nodes (V^2 scaling);
//  - Fig 6: 30mm unbuffered delay ~3.2ns (quadratic), buffered ~1ns
//    (linear);
//  - Table 2 Vdd: 1.2 / 1.1 / 0.9 V (ITRS).

Technology
tech013()
{
    Technology t;
    t.name = "0.13um";
    t.feature_um = 0.13;
    t.vdd = 1.2;
    t.r_per_mm = 150.0;
    t.cs_per_mm = 2.00e-15;   // fF/mm scale
    t.ci_per_mm = 28.0e-15;
    t.r0 = 10.0e3;
    t.c0 = 2.0e-15;
    t.t0 = 15.0e-12;
    t.rep_cap_factor = 0.907;
    return t;
}

Technology
tech010()
{
    Technology t;
    t.name = "0.10um";
    t.feature_um = 0.10;
    t.vdd = 1.1;
    t.r_per_mm = 250.0;
    t.cs_per_mm = 1.70e-15;
    t.ci_per_mm = 28.2e-15;
    t.r0 = 13.0e3;
    t.c0 = 1.4e-15;
    t.t0 = 11.0e-12;
    t.rep_cap_factor = 1.076;
    return t;
}

Technology
tech007()
{
    Technology t;
    t.name = "0.07um";
    t.feature_um = 0.07;
    t.vdd = 0.9;
    t.r_per_mm = 400.0;
    t.cs_per_mm = 1.83e-15;
    t.ci_per_mm = 26.6e-15;
    t.r0 = 17.0e3;
    t.c0 = 0.9e-15;
    t.t0 = 8.0e-12;
    t.rep_cap_factor = 1.038;
    return t;
}

const std::vector<Technology> &
allTechnologies()
{
    static const std::vector<Technology> techs = {tech013(), tech010(),
                                                  tech007()};
    return techs;
}

const Technology &
technology(const std::string &name)
{
    for (const Technology &t : allTechnologies())
        if (t.name == name)
            return t;
    fatal("unknown technology '", name, "'");
}

} // namespace predbus::wires
