#include "wires/wire_model.h"

#include <cmath>

#include "common/log.h"

namespace predbus::wires
{

namespace
{

/** Total switched capacitance per mm for delay purposes (both
 * neighbors quiet, so they contribute full CI each). */
double
cTotalPerMm(const Technology &t)
{
    return t.cs_per_mm + 2.0 * t.ci_per_mm;
}

} // namespace

RepeaterDesign
optimalRepeaters(const Technology &tech, double length_mm)
{
    RepeaterDesign d;
    const double R = tech.r_per_mm * length_mm;
    const double C = cTotalPerMm(tech) * length_mm;
    const double k =
        std::sqrt((0.4 * R * C) / (0.7 * tech.r0 * tech.c0));
    const double h = std::sqrt((tech.r0 * C) / (R * tech.c0));
    d.count = static_cast<u32>(std::max(1.0, std::round(k)));
    d.size = h;
    d.cap_total =
        tech.rep_cap_factor * k * h * tech.c0;  // use unrounded k
    return d;
}

WireModel::WireModel(const Technology &tech, double length_mm,
                     bool buffered)
    : technology(tech), length_mm(length_mm), is_buffered(buffered)
{
    if (length_mm <= 0.0)
        fatal("wire length must be positive");
    if (buffered) {
        design = optimalRepeaters(tech, length_mm);
        cs_eff = tech.cs_per_mm + design.cap_total / length_mm;
    } else {
        cs_eff = tech.cs_per_mm;
    }
}

double
WireModel::effectiveLambda() const
{
    return technology.ci_per_mm / cs_eff;
}

double
WireModel::energyPerTransition() const
{
    return cs_eff * length_mm * technology.vdd * technology.vdd;
}

double
WireModel::energyPerCoupling() const
{
    return technology.ci_per_mm * length_mm * technology.vdd *
           technology.vdd;
}

double
WireModel::energy(u64 tau, u64 kappa) const
{
    return energyPerTransition() * static_cast<double>(tau) +
           energyPerCoupling() * static_cast<double>(kappa);
}

double
WireModel::isolatedTransitionEnergy() const
{
    return (cs_eff + 2.0 * technology.ci_per_mm) * length_mm *
           technology.vdd * technology.vdd;
}

double
WireModel::delay() const
{
    const double R = technology.r_per_mm * length_mm;
    const double C = cTotalPerMm(technology) * length_mm;
    if (!is_buffered) {
        // Fixed large driver (50x min) plus distributed Elmore term:
        // quadratic in length, as in Fig 6.
        return 0.7 * (technology.r0 / 50.0) * C + 0.4 * R * C;
    }
    const double k = std::max(1.0, static_cast<double>(design.count));
    const double h = design.size;
    const double per_stage =
        0.7 * (technology.r0 / h) *
            (2.0 * h * technology.c0 + C / k) +
        (R / k) * (0.4 * C / k + 0.7 * h * technology.c0);
    // Initial driver cascade to reach size h: ~ln(h) min-inverter
    // delays (exponential taper).
    const double cascade = std::log(std::max(2.0, h)) * technology.t0 * 3;
    return k * per_stage + cascade;
}

} // namespace predbus::wires
