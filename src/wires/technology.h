/**
 * @file
 * Interconnect technology parameters (paper §3).
 *
 * The paper derives wire parameters from the Berkeley Predictive
 * Technology Model and ITRS geometries, then characterizes them with
 * HSPICE. We substitute an analytic distributed-RC + repeater model
 * (DESIGN.md §1): the parameter sets below are calibrated so that the
 * model lands on the paper's published anchors — Table 1 effective-λ
 * values and the Fig 5/6 energy/delay magnitudes.
 */

#ifndef PREDBUS_WIRES_TECHNOLOGY_H
#define PREDBUS_WIRES_TECHNOLOGY_H

#include <string>
#include <vector>

#include "common/types.h"

namespace predbus::wires
{

/** One process node's wire and driver parameters. */
struct Technology
{
    std::string name;       ///< "0.13um", ...
    double feature_um;      ///< drawn feature size
    double vdd;             ///< supply voltage (V)
    double r_per_mm;        ///< wire resistance (ohm/mm, min pitch)
    double cs_per_mm;       ///< wire-to-substrate capacitance (F/mm)
    double ci_per_mm;       ///< inter-wire capacitance per neighbor (F/mm)
    double r0;              ///< min inverter output resistance (ohm)
    double c0;              ///< min inverter input capacitance (F)
    double t0;              ///< min inverter intrinsic delay (s)
    double rep_cap_factor;  ///< calibration: fraction of repeater gate
                            ///< capacitance charged per transition
                            ///< (fitted to the paper's Table 1 buffered
                            ///< effective-lambda values)

    /** Unbuffered λ = CI / CS (paper Fig 3, Table 1). */
    double
    unbufferedLambda() const
    {
        return ci_per_mm / cs_per_mm;
    }
};

/** The three nodes the paper evaluates. */
Technology tech013();
Technology tech010();
Technology tech007();

/** All nodes, largest feature first (paper's presentation order). */
const std::vector<Technology> &allTechnologies();

/** Look up by name ("0.13um" etc.); FatalError if unknown. */
const Technology &technology(const std::string &name);

} // namespace predbus::wires

#endif // PREDBUS_WIRES_TECHNOLOGY_H
