/**
 * @file
 * Multi-stride predictive transcoder (paper §4.3 Fig 11, Figs 16-17).
 *
 * A shift register of previous bus values feeds K stride predictors:
 * predictor k extrapolates from every k-th value,
 * pred_k = h[k-1] + (h[k-1] - h[2k-1]) (h[0] = most recent). The
 * lowest matching interval wins and is sent as a low-weight code
 * (confidence ordering); LAST-value repeats are code 0; otherwise the
 * word goes raw.
 */

#ifndef PREDBUS_CODING_STRIDE_H
#define PREDBUS_CODING_STRIDE_H

#include <vector>

#include "coding/protocol.h"

namespace predbus::coding
{

class StrideTranscoder : public Transcoder
{
  public:
    /** @p num_strides = K, intervals 1..K. */
    explicit StrideTranscoder(unsigned num_strides, double lambda = 1.0);

    std::string name() const override;
    unsigned width() const override { return kCodedWidth; }
    u64 encode(Word value) override;
    Word decode(u64 wire_state) override;
    void encodeSpan(const Word *in, u64 *out, std::size_t n) override;
    void decodeSpan(const u64 *in, Word *out, std::size_t n) override;

    unsigned strides() const { return K; }

  protected:
    void resetState() override;

  private:
    /**
     * Ring buffer of the last 2K values: push writes one slot and
     * moves the head instead of shifting all 2K entries (what the
     * hardware shift register does, but O(1) in software).
     */
    struct Fsm
    {
        std::vector<Word> history;
        std::size_t head = 0;       ///< index of the most recent value
        std::size_t filled = 0;
        u64 state = 0;
        Word last = 0;
        bool has_last = false;

        /** The @p offset -th most recent value (0 = newest). */
        Word
        at(std::size_t offset) const
        {
            std::size_t i = head + offset;
            if (i >= history.size())
                i -= history.size();
            return history[i];
        }

        void push(Word v);
        /** Prediction for interval k; false if history too short. */
        bool predict(unsigned k, Word &out) const;
    };

    unsigned K;
    double lambda;
    Fsm enc, dec;
};

} // namespace predbus::coding

#endif // PREDBUS_CODING_STRIDE_H
