/**
 * @file
 * Multi-stride predictive transcoder (paper §4.3 Fig 11, Figs 16-17).
 *
 * A shift register of previous bus values feeds K stride predictors:
 * predictor k extrapolates from every k-th value,
 * pred_k = h[k-1] + (h[k-1] - h[2k-1]) (h[0] = most recent). The
 * lowest matching interval wins and is sent as a low-weight code
 * (confidence ordering); LAST-value repeats are code 0; otherwise the
 * word goes raw.
 *
 * History lives in a doubled sliding buffer so the 2K most recent
 * values are always contiguous at buf[head..head+2K): a push is one
 * store and a decrement (amortizing one block copy every 2K pushes),
 * h[offset] is a plain indexed load with no modulo, and the span
 * kernel's 8-way SIMD predictor compare reads the history window with
 * two vector loads.
 */

#ifndef PREDBUS_CODING_STRIDE_H
#define PREDBUS_CODING_STRIDE_H

#include <vector>

#include "coding/protocol.h"

namespace predbus::coding
{

class StrideTranscoder;

namespace detail
{
/** Batch encode kernel for stride transcoders: closed-form constant
 * stride runs, an 8-way predictor compare (AVX2 variant selected at
 * runtime for K == 8), and the raw-choice cost math inlined into one
 * loop. Defined in stride.cpp; byte-identical to encode(). */
void strideEncodeSpan(StrideTranscoder &t, const Word *in, u64 *out,
                      std::size_t n);
} // namespace detail

class StrideTranscoder : public Transcoder
{
  public:
    /** @p num_strides = K, intervals 1..K. */
    explicit StrideTranscoder(unsigned num_strides, double lambda = 1.0);

    std::string name() const override;
    unsigned width() const override { return kCodedWidth; }
    u64 encode(Word value) override;
    Word decode(u64 wire_state) override;
    void encodeSpan(const Word *in, u64 *out, std::size_t n) override;
    void decodeSpan(const u64 *in, Word *out, std::size_t n) override;

    unsigned strides() const { return K; }

  protected:
    void resetState() override;
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    friend void detail::strideEncodeSpan(StrideTranscoder &,
                                         const Word *, u64 *,
                                         std::size_t);

    /**
     * Doubled sliding window over the last 2K values: buf holds 4K
     * words, the window is buf[head..head+2K) with the most recent
     * value first, and a push decrements head (relocating the window
     * to the upper half when head reaches 0 — what the hardware shift
     * register does, but O(1) amortized in software and contiguous
     * for the SIMD predictors).
     */
    struct Fsm
    {
        std::vector<Word> buf;
        std::size_t head = 0;       ///< window start (most recent)
        std::size_t filled = 0;
        u64 state = 0;
        Word last = 0;
        bool has_last = false;

        /** The @p offset -th most recent value (0 = newest). */
        Word
        at(std::size_t offset) const
        {
            return buf[head + offset];
        }

        void push(Word v);
        /** Prediction for interval k; false if history too short. */
        bool predict(unsigned k, Word &out) const;
    };

    unsigned K;
    double lambda;
    Fsm enc, dec;
};

} // namespace predbus::coding

#endif // PREDBUS_CODING_STRIDE_H
