/**
 * @file
 * Multi-stride predictive transcoder (paper §4.3 Fig 11, Figs 16-17).
 *
 * A shift register of previous bus values feeds K stride predictors:
 * predictor k extrapolates from every k-th value,
 * pred_k = h[k-1] + (h[k-1] - h[2k-1]) (h[0] = most recent). The
 * lowest matching interval wins and is sent as a low-weight code
 * (confidence ordering); LAST-value repeats are code 0; otherwise the
 * word goes raw.
 */

#ifndef PREDBUS_CODING_STRIDE_H
#define PREDBUS_CODING_STRIDE_H

#include <vector>

#include "coding/protocol.h"

namespace predbus::coding
{

class StrideTranscoder : public Transcoder
{
  public:
    /** @p num_strides = K, intervals 1..K. */
    explicit StrideTranscoder(unsigned num_strides, double lambda = 1.0);

    std::string name() const override;
    unsigned width() const override { return kCodedWidth; }
    u64 encode(Word value) override;
    Word decode(u64 wire_state) override;
    void reset() override;

    unsigned strides() const { return K; }

  private:
    struct Fsm
    {
        std::vector<Word> history;  ///< [0] = most recent
        std::size_t filled = 0;
        u64 state = 0;
        Word last = 0;
        bool has_last = false;

        void push(Word v);
        /** Prediction for interval k; false if history too short. */
        bool predict(unsigned k, Word &out) const;
    };

    unsigned K;
    double lambda;
    Fsm enc, dec;
};

} // namespace predbus::coding

#endif // PREDBUS_CODING_STRIDE_H
