/**
 * @file
 * Generalized inversion coder (paper §4.3 Fig 10, Fig 15, §5.2).
 *
 * Stateless except for the current bus value: each word's transition
 * vector (input XOR current bus data) is XORed with one of a set of
 * constant bit patterns; the pattern minimizing the assumed-λ cost of
 * the resulting bus transition is chosen and its index is signalled on
 * log2(patterns) extra wires. Pattern set {0, ~0} with λ=0 is classic
 * Bus-Invert; the paper's λ0/λ1/λN variants differ only in the λ the
 * *selector* assumes (the actual wire λ is applied when measuring).
 */

#ifndef PREDBUS_CODING_INVERSION_H
#define PREDBUS_CODING_INVERSION_H

#include <vector>

#include "coding/codec.h"

namespace predbus::coding
{

/** The default generalized pattern set (first n are used). */
const std::vector<Word> &inversionPatterns();

class InversionCoder : public Transcoder
{
  public:
    /**
     * @p num_patterns constants (power of two, <= 64);
     * @p assumed_lambda is the λ the selection logic optimizes for.
     */
    InversionCoder(unsigned num_patterns, double assumed_lambda);

    std::string name() const override;
    unsigned width() const override { return total_width; }
    u64 encode(Word value) override;
    Word decode(u64 wire_state) override;
    void encodeSpan(const Word *in, u64 *out, std::size_t n) override;
    void decodeSpan(const u64 *in, Word *out, std::size_t n) override;

  protected:
    void resetState() override;
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    std::vector<Word> patterns;
    double assumed_lambda;
    unsigned signal_bits;
    unsigned total_width;
    u64 enc_state = 0;
    u64 dec_state = 0;
};

} // namespace predbus::coding

#endif // PREDBUS_CODING_INVERSION_H
