/**
 * @file
 * Working-zone encoding (paper §2, ref [15] Musoll/Lang/Cortadella).
 *
 * An address-bus code: programs touch a few "working zones" (stack,
 * several arrays), and successive addresses within a zone differ by a
 * small offset. The encoder keeps one previous address per zone; when
 * the new address lands within ±16 words of some zone's previous
 * address, it transmits the offset as a one-hot flip of the data wires
 * plus the zone id — otherwise it sends the raw address and (re)trains
 * the least-recently-used zone.
 *
 * Wire layout: 32 data wires, 1 hit wire (absolute), zone-id wires
 * (absolute, log2(zones)).
 */

#ifndef PREDBUS_CODING_WORKZONE_H
#define PREDBUS_CODING_WORKZONE_H

#include <vector>

#include "coding/codec.h"

namespace predbus::coding
{

class WorkZoneCoder : public Transcoder
{
  public:
    /** @p zones must be a power of two in [1, 16]. */
    explicit WorkZoneCoder(unsigned zones);

    std::string name() const override;
    unsigned width() const override { return total_width; }
    u64 encode(Word value) override;
    Word decode(u64 wire_state) override;
    void encodeSpan(const Word *in, u64 *out, std::size_t n) override;
    void decodeSpan(const u64 *in, Word *out, std::size_t n) override;

    /** Offsets coded one-hot: delta in [-16, 16] excluding nothing;
     * delta==0 uses the all-zero flip. */
    static constexpr s32 kRange = 16;

  protected:
    void resetState() override;
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    struct Zone
    {
        Word prev = 0;
        bool valid = false;
        u64 lru = 0;
    };

    struct Fsm
    {
        std::vector<Zone> zones;
        u64 state = 0;
        u64 use_counter = 0;
    };

    /** delta in [-kRange, kRange], delta != 0 -> wire index 0..31. */
    static unsigned offsetIndex(s32 delta);
    static s32 indexOffset(unsigned index);

    u64 encodeWith(Fsm &fsm, Word value, bool count_ops);

    unsigned n_zones;
    unsigned zone_bits;
    unsigned total_width;
    Fsm enc, dec;
};

} // namespace predbus::coding

#endif // PREDBUS_CODING_WORKZONE_H
