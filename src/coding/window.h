/**
 * @file
 * Window-based dictionary (paper §4.3 "Window-based predictor",
 * Figs 18-19, and the silicon design of §5, Fig 33).
 *
 * A pointer-based shift register of the last N *unique* bus values:
 * hits leave the register untouched; misses replace the oldest entry
 * (only the head entry's bits change — the paper's "pointer-based
 * shift entries" circuit). Codes are physical positions.
 *
 * State is structure-of-arrays: one contiguous value array (padded to
 * a whole number of 8-lane blocks) plus a fill count. Validity is a
 * dense prefix — the head cycles 0..N-1 setting entries in order — so
 * no per-entry valid bit is needed, and the CAM probe is a flat
 * compare over the filled prefix that an AVX2 kernel (selected at
 * runtime, scalar fallback) can do 8 entries per instruction.
 */

#ifndef PREDBUS_CODING_WINDOW_H
#define PREDBUS_CODING_WINDOW_H

#include <vector>

#include "coding/predictive.h"

namespace predbus::coding
{

/** Probe kernel window dictionaries use on this host: "avx2" or
 * "scalar". Fixed at startup. */
const char *windowProbeKind();

class WindowDict;

namespace detail
{
/** Batch encode kernel for window transcoders: the predictive
 * per-word algorithm with the CAM probe, insert, and raw-choice cost
 * math inlined into one loop (AVX2+popcnt variant selected at
 * runtime). Defined in window.cpp; byte-identical to encode(). */
void windowEncodeSpan(WindowDict &dict, const Word *in, u64 *out,
                      std::size_t n, u64 &state, Word &last,
                      bool &has_last, OpCounts &ops, double lambda,
                      bool cost_aware);
} // namespace detail

class WindowDict
{
  public:
    explicit WindowDict(unsigned entries);

    LookupResult access(Word v, OpCounts *ops);
    Word valueAt(unsigned index) const;
    unsigned entries() const { return n; }
    void reset();

    /** Serialize / restore the register contents (snapshot.h). The
     * entry count is config, not state: load() fails the reader if it
     * doesn't match this dictionary's. */
    void save(StateWriter &w) const;
    void load(StateReader &r);

    /** True if @p v is currently resident (for tests). */
    bool contains(Word v) const;

    /**
     * Position of @p v in the window, -1 if absent. Resident values
     * are unique (a value already present hits and is never
     * re-inserted), so any-match SIMD order equals first-match.
     */
    int find(Word v) const;

  private:
    friend void detail::windowEncodeSpan(WindowDict &, const Word *,
                                         u64 *, std::size_t, u64 &,
                                         Word &, bool &, OpCounts &,
                                         double, bool);

    unsigned n = 0;       ///< logical entry count
    unsigned filled = 0;  ///< dense-prefix count of valid entries
    unsigned head = 0;    ///< next replacement position
    std::vector<Word> vals;  ///< padded to a multiple of 8 lanes
};

/** The paper's Window-based transcoder. */
using WindowTranscoder = PredictiveTranscoder<WindowDict>;

/** Window family hot path: route spans through the fused kernel. */
template <>
void PredictiveTranscoder<WindowDict>::encodeSpan(const Word *in,
                                                  u64 *out,
                                                  std::size_t n);

} // namespace predbus::coding

#endif // PREDBUS_CODING_WINDOW_H
