/**
 * @file
 * Window-based dictionary (paper §4.3 "Window-based predictor",
 * Figs 18-19, and the silicon design of §5, Fig 33).
 *
 * A pointer-based shift register of the last N *unique* bus values:
 * hits leave the register untouched; misses replace the oldest entry
 * (only the head entry's bits change — the paper's "pointer-based
 * shift entries" circuit). Codes are physical positions.
 */

#ifndef PREDBUS_CODING_WINDOW_H
#define PREDBUS_CODING_WINDOW_H

#include <vector>

#include "coding/predictive.h"

namespace predbus::coding
{

class WindowDict
{
  public:
    explicit WindowDict(unsigned entries);

    LookupResult access(Word v, OpCounts *ops);
    Word valueAt(unsigned index) const;
    unsigned entries() const { return static_cast<unsigned>(vals.size()); }
    void reset();

    /** True if @p v is currently resident (for tests). */
    bool contains(Word v) const;

  private:
    std::vector<Word> vals;
    std::vector<bool> valid;
    unsigned head = 0;   ///< next replacement position
};

/** The paper's Window-based transcoder. */
using WindowTranscoder = PredictiveTranscoder<WindowDict>;

} // namespace predbus::coding

#endif // PREDBUS_CODING_WINDOW_H
