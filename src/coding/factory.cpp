#include "coding/factory.h"

#include <charconv>

#include "common/log.h"
#include "coding/inversion.h"
#include "coding/partial_invert.h"
#include "coding/workzone.h"
#include "coding/spatial.h"
#include "coding/stride.h"
#include "coding/window.h"

namespace predbus::coding
{

namespace
{

/** The unencoded bus: wire states are the values themselves. */
class RawBus : public Transcoder
{
  public:
    std::string name() const override { return "raw"; }
    unsigned width() const override { return kDataWidth; }

    u64
    encode(Word value) override
    {
        ++op_counts.cycles;
        return value;
    }

    Word decode(u64 wire_state) override
    {
        return static_cast<Word>(wire_state);
    }

    void
    encodeSpan(const Word *in, u64 *out, std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = in[i];
        op_counts.cycles += n;
    }

    void
    decodeSpan(const u64 *in, Word *out, std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = static_cast<Word>(in[i]);
    }

  protected:
    void resetState() override {}
};

} // namespace

std::unique_ptr<Transcoder>
makeRaw()
{
    return std::make_unique<RawBus>();
}

std::unique_ptr<Transcoder>
makeWindow(unsigned entries, double lambda, bool cost_aware)
{
    const std::string name = "window" + std::to_string(entries) +
                             (cost_aware ? "-ca" : "");
    return std::make_unique<WindowTranscoder>(
        name, WindowDict(entries), lambda, cost_aware);
}

std::unique_ptr<Transcoder>
makeContext(const ContextConfig &config, double lambda)
{
    const std::string flavor =
        config.transition_based ? "ctx-trans" : "ctx-value";
    return std::make_unique<ContextTranscoder>(
        flavor + std::to_string(config.table_size) + "+" +
            std::to_string(config.sr_size),
        ContextDict(config), lambda);
}

std::unique_ptr<Transcoder>
makeStride(unsigned strides, double lambda)
{
    return std::make_unique<StrideTranscoder>(strides, lambda);
}

std::unique_ptr<Transcoder>
makeInversion(unsigned patterns, double assumed_lambda)
{
    return std::make_unique<InversionCoder>(patterns, assumed_lambda);
}

std::unique_ptr<Transcoder>
makeSpatial(unsigned input_bits)
{
    return std::make_unique<SpatialCoder>(input_bits);
}

std::unique_ptr<Transcoder>
makePartialInvert(unsigned groups, double assumed_lambda)
{
    return std::make_unique<PartialBusInvert>(groups, assumed_lambda);
}

std::unique_ptr<Transcoder>
makeWorkZone(unsigned zones)
{
    return std::make_unique<WorkZoneCoder>(zones);
}

namespace
{

std::vector<std::string>
splitColons(const std::string &spec)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char ch : spec) {
        if (ch == ':') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    parts.push_back(cur);
    return parts;
}

unsigned
parseUnsigned(const std::string &tok, const std::string &spec)
{
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), value);
    if (ec != std::errc{} || ptr != tok.data() + tok.size())
        fatal("bad number '", tok, "' in codec spec '", spec, "'");
    return value;
}

} // namespace

std::unique_ptr<Transcoder>
makeFromSpec(const std::string &spec)
{
    const std::vector<std::string> parts = splitColons(spec);
    const std::string &kind = parts[0];

    if (kind == "raw") {
        if (parts.size() != 1)
            fatal("codec spec 'raw' takes no arguments");
        return makeRaw();
    }
    if (kind == "window") {
        if (parts.size() < 2 || parts.size() > 3)
            fatal("codec spec: expected window:N[:ca]");
        const unsigned entries = parseUnsigned(parts[1], spec);
        bool cost_aware = false;
        if (parts.size() == 3) {
            if (parts[2] != "ca")
                fatal("codec spec: unknown window option '", parts[2],
                      "'");
            cost_aware = true;
        }
        return makeWindow(entries, 1.0, cost_aware);
    }
    if (kind == "ctx") {
        if (parts.size() < 2)
            fatal("codec spec: expected ctx:T+S[:trans][:dD]");
        const auto plus = parts[1].find('+');
        if (plus == std::string::npos)
            fatal("codec spec: context needs T+S sizes");
        ContextConfig cfg;
        cfg.table_size =
            parseUnsigned(parts[1].substr(0, plus), spec);
        cfg.sr_size = parseUnsigned(parts[1].substr(plus + 1), spec);
        for (std::size_t i = 2; i < parts.size(); ++i) {
            if (parts[i] == "trans")
                cfg.transition_based = true;
            else if (!parts[i].empty() && parts[i][0] == 'd')
                cfg.divide_period =
                    parseUnsigned(parts[i].substr(1), spec);
            else
                fatal("codec spec: unknown context option '", parts[i],
                      "'");
        }
        return makeContext(cfg);
    }
    if (kind == "stride") {
        if (parts.size() != 2)
            fatal("codec spec: expected stride:K");
        return makeStride(parseUnsigned(parts[1], spec));
    }
    if (kind == "inv") {
        if (parts.size() < 2 || parts.size() > 3)
            fatal("codec spec: expected inv:P[:l<lambda>]");
        double lambda = 0.0;
        if (parts.size() == 3) {
            if (parts[2].empty() || parts[2][0] != 'l')
                fatal("codec spec: unknown inversion option '",
                      parts[2], "'");
            try {
                lambda = std::stod(parts[2].substr(1));
            } catch (const std::exception &) {
                fatal("codec spec: bad lambda in '", spec, "'");
            }
        }
        return makeInversion(parseUnsigned(parts[1], spec), lambda);
    }
    if (kind == "pbi") {
        if (parts.size() != 2)
            fatal("codec spec: expected pbi:G");
        return makePartialInvert(parseUnsigned(parts[1], spec), 1.0);
    }
    if (kind == "wze") {
        if (parts.size() != 2)
            fatal("codec spec: expected wze:Z");
        return makeWorkZone(parseUnsigned(parts[1], spec));
    }
    if (kind == "spatial") {
        if (parts.size() != 2)
            fatal("codec spec: expected spatial:B");
        return makeSpatial(parseUnsigned(parts[1], spec));
    }
    fatal("unknown codec spec '", spec, "'");
}

} // namespace predbus::coding
