/**
 * @file
 * Stateful codec sessions: the unit of service in src/serve.
 *
 * A CodecSession wraps one Transcoder (a synchronized encoder/decoder
 * FSM pair, see codec.h) with the bookkeeping a *distributed* use of
 * that pair needs: a per-batch sequence number and a rolling checksum
 * of the session's output stream. The paper's correctness invariant is
 * that the dictionaries at both ends of the bus evolve in lock-step;
 * when the two ends are a client and a server separated by a network,
 * that invariant is verified explicitly — both sides fold the same
 * output stream into the same checksum, and any divergence (a dropped
 * batch, a reordered frame, mismatched state) is detected before the
 * FSMs are advanced further. resync() is the recovery path: both ends
 * return to the initial FSM state and start a new epoch.
 *
 * The same class is the in-process reference for the end-to-end tests:
 * a trace pushed through a served session must produce byte-identical
 * wire states, checksums, and operation counts to a local CodecSession
 * built from the same spec.
 */

#ifndef PREDBUS_CODING_SESSION_H
#define PREDBUS_CODING_SESSION_H

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "coding/bus_energy.h"
#include "coding/codec.h"

namespace predbus::obs
{
class Counter;
class Registry;
}

namespace predbus::coding
{

/** FNV-1a 64-bit offset basis: the checksum of an empty stream. */
constexpr u64 kChecksumSeed = 0xcbf29ce484222325ull;

/** Fold one 64-bit output (wire state or zero-extended word) into a
 * rolling FNV-1a checksum, least-significant byte first. */
constexpr u64
checksumFold(u64 sum, u64 value)
{
    for (int i = 0; i < 8; ++i) {
        sum ^= (value >> (8 * i)) & 0xff;
        sum *= 0x100000001b3ull;
    }
    return sum;
}

/** Live wire-event attribution for one session (see energy()). */
struct SessionEnergy
{
    EnergyCount base;   ///< unencoded 32-wire bus over the same words
    EnergyCount coded;  ///< coded bus (width() wires)
    u64 words = 0;      ///< words metered so far

    /** Paper's "Normalized Energy Removed" at coupling ratio
     * @p lambda; 0 when nothing has been metered yet. */
    double
    removedFraction(double lambda) const
    {
        const double b = base.cost(lambda);
        return (b > 0.0) ? 1.0 - coded.cost(lambda) / b : 0.0;
    }
};

/** One stateful transcoding session. */
class CodecSession
{
  public:
    explicit CodecSession(std::unique_ptr<Transcoder> transcoder);

    /** Build from a factory spec ("window:8", ...); throws FatalError
     * on malformed specs (coding::makeFromSpec). */
    explicit CodecSession(const std::string &spec);

    const Transcoder &codec() const { return *transcoder; }
    Transcoder &codec() { return *transcoder; }

    /** The factory spec this session was built from; empty when the
     * session adopted a ready-made transcoder. */
    const std::string &spec() const { return spec_str; }

    /**
     * Serialize the complete session — spec, sequence number, rolling
     * checksum, epoch, energy-meter state, and both transcoder FSMs —
     * into the versioned, checksummed coding/snapshot.h format. A
     * restore()d image continues the stream byte-identically: same
     * wire states, checksums, OpCounts, and energy totals as the
     * uninterrupted session. Requires a spec-constructed session
     * (throws FatalError otherwise; the spec is what restore() feeds
     * the factory). Metric attachments are runtime wiring and are not
     * captured — re-attach after restore.
     */
    std::vector<u8> snapshot() const;

    /** Rebuild a session from snapshot() bytes. Any corruption —
     * failed checksum, truncation, bad magic/version, or a config
     * mismatch inside — throws FatalError. */
    static CodecSession restore(std::span<const u8> bytes);

    /** Batches processed since construction / the last resync(). */
    u64 seq() const { return seq_no; }

    /** Rolling checksum over every output produced so far. */
    u64 checksum() const { return sum; }

    /** Resyncs performed (0 for a fresh session). */
    u32 epoch() const { return epoch_no; }

    /**
     * Encode @p values, appending one wire state per value to @p out.
     * The whole payload goes through the transcoder's encodeSpan()
     * batch path; the checksum is folded over the produced span.
     * Advances the sequence number by one.
     */
    void encodeBatch(std::span<const Word> values,
                     std::vector<u64> &out);

    /**
     * Decode @p states, appending one value per state to @p out via
     * decodeSpan(). Advances the sequence number and folds each
     * decoded value (zero-extended) into the checksum.
     */
    void decodeBatch(std::span<const u64> states,
                     std::vector<Word> &out);

    /**
     * Optional metrics: once attached, batches count into the
     * coding.span.encode_words / coding.span.decode_words /
     * coding.span.batches counters of @p registry. Counters are
     * shared across all attached sessions of the registry.
     */
    void attachSpanMetrics(obs::Registry &registry);

    /**
     * Turn on live energy metering: every subsequent batch also runs
     * a base-vs-coded BusEnergyMeter pair mirroring the offline
     * StreamingEvaluator exactly — encode meters the input words on
     * the unencoded 32-wire bus and the produced states on the coded
     * bus; decode meters the decoded words as base and the incoming
     * states as coded. Because the meters carry the previous wire
     * state across batches, the totals are independent of batch
     * boundaries: a served stream reports exactly the tau/kappa an
     * offline evaluate() of the same trace reports. Idempotent.
     */
    void enableEnergyMetering();

    bool
    energyMeteringEnabled() const
    {
        return base_meter.has_value();
    }

    /** Totals over every batch since metering was enabled (all-zero
     * when metering is off). Codecs that meter internally
     * (metersInternally()) report their internalCount() as coded. */
    SessionEnergy energy() const;

    /**
     * Recovery handshake: reset both FSMs to their initial state,
     * restart the sequence number and checksum, and begin a new
     * epoch. After resync() the session behaves exactly like a fresh
     * one (operation counters restart too).
     */
    void resync();

  private:
    std::unique_ptr<Transcoder> transcoder;
    std::string spec_str;
    u64 seq_no = 0;
    u64 sum = kChecksumSeed;
    u32 epoch_no = 0;
    std::optional<BusEnergyMeter> base_meter;
    std::optional<BusEnergyMeter> coded_meter;
    u64 metered_words = 0;
    obs::Counter *m_encode_words = nullptr;
    obs::Counter *m_decode_words = nullptr;
    obs::Counter *m_batches = nullptr;
};

} // namespace predbus::coding

#endif // PREDBUS_CODING_SESSION_H
