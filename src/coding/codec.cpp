#include "coding/codec.h"

#include "coding/snapshot.h"
#include "obs/metrics.h"

namespace predbus::coding
{

void
Transcoder::encodeSpan(const Word *in, u64 *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = encode(in[i]);
}

void
Transcoder::decodeSpan(const u64 *in, Word *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = decode(in[i]);
}

void
Transcoder::reset()
{
    resetState();
    op_counts = OpCounts{};
    published = OpCounts{};
}

void
Transcoder::save(StateWriter &w) const
{
    saveOpCounts(w, op_counts);
    saveOpCounts(w, published);
    saveState(w);
}

void
Transcoder::load(StateReader &r)
{
    loadOpCounts(r, op_counts);
    loadOpCounts(r, published);
    loadState(r);
}

void
Transcoder::setStatsSink(obs::Registry &registry,
                         const std::string &prefix)
{
    const std::string base =
        "coding." + obs::metricSegment(prefix) + ".";
    stats.cycles = &registry.counter(base + "cycles");
    stats.dict_hits = &registry.counter(base + "dict_hits");
    stats.last_hits = &registry.counter(base + "last_hits");
    stats.raw_sends = &registry.counter(base + "raw_sends");
    stats.dict_evictions = &registry.counter(base + "dict_evictions");
    stats.cam_probes = &registry.counter(base + "cam_probes");
    stats.counter_incs = &registry.counter(base + "counter_incs");
    stats.compares = &registry.counter(base + "compares");
    stats.swaps = &registry.counter(base + "swaps");
    stats.divisions = &registry.counter(base + "divisions");
    stats.attached = true;
}

void
Transcoder::flushStats()
{
    if (!stats.attached)
        return;
    // Deltas against the last flush; a reset() since then (counters
    // restarted below the baseline) publishes the full current value.
    const auto delta = [](u64 current, u64 &baseline) {
        const u64 d =
            current >= baseline ? current - baseline : current;
        baseline = current;
        return d;
    };
    stats.cycles->inc(delta(op_counts.cycles, published.cycles));
    stats.dict_hits->inc(delta(op_counts.hits, published.hits));
    stats.last_hits->inc(
        delta(op_counts.last_hits, published.last_hits));
    stats.raw_sends->inc(
        delta(op_counts.raw_sends, published.raw_sends));
    // A shift inserts a new value, evicting the oldest resident entry
    // (window) or the staging tail (context): the dictionary's
    // eviction count.
    stats.dict_evictions->inc(
        delta(op_counts.shifts, published.shifts));
    stats.cam_probes->inc(delta(op_counts.matches, published.matches));
    stats.counter_incs->inc(
        delta(op_counts.counter_incs, published.counter_incs));
    stats.compares->inc(delta(op_counts.compares, published.compares));
    stats.swaps->inc(delta(op_counts.swaps, published.swaps));
    stats.divisions->inc(
        delta(op_counts.divisions, published.divisions));
}

} // namespace predbus::coding
