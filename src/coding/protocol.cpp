#include "coding/protocol.h"

namespace predbus::coding
{

std::optional<DecodedCodeword>
interpret(u64 state, u64 prev_state)
{
    DecodedCodeword out;
    const u64 data = state & kDataMask;
    switch (ctlOf(state)) {
      case CtlState::Code: {
        const u64 cw = data ^ (prev_state & kDataMask);
        if (cw == 0) {
            out.kind = DecodedCodeword::Kind::LastValue;
            return out;
        }
        if (const auto index = codeIndex(cw)) {
            out.kind = DecodedCodeword::Kind::Dictionary;
            out.index = *index;
            return out;
        }
        return std::nullopt;
      }
      case CtlState::Raw:
        out.kind = DecodedCodeword::Kind::Raw;
        out.raw = static_cast<Word>(data);
        return out;
      case CtlState::RawInv:
        out.kind = DecodedCodeword::Kind::RawInverted;
        out.raw = static_cast<Word>(~data & kDataMask);
        return out;
      default:
        return std::nullopt;
    }
}

} // namespace predbus::coding
