/**
 * @file
 * Context-based dictionary (paper §4.3 Figs 12-14, §5.3): a staging
 * shift register with frequency counts in front of a frequency table
 * kept sorted by the paper's pending-bit neighbor-swap algorithm
 * (§5.3.1, Fig 27).
 *
 * Invariant 1: every resident tag is unique (at most one match).
 * Invariant 2: table entries are ordered by non-increasing counter
 * value, so the table position *is* the code and the most frequent
 * values get the lowest-weight codes.
 *
 * The value-based flavor keys on bus values (Fig 13); the
 * transition-based flavor keys on (previous, current) value pairs
 * (Fig 14).
 *
 * State is structure-of-arrays: one contiguous u64 key lane array per
 * store (frequency table and staging SR, each padded to whole 4-lane
 * blocks), a parallel u32 counter array, and the pending bits packed
 * into a bitmask. Validity is a dense prefix in both stores — the
 * table fills from the top and the SR head cycles 0..S-1 setting
 * entries in order — so there is no per-entry valid bit and the CAM
 * probe is a flat 64-bit compare over the filled prefix that an AVX2
 * kernel (selected at runtime, scalar fallback, see
 * PREDBUS_FORCE_SCALAR in docs/PERF.md) does 4 keys per instruction.
 */

#ifndef PREDBUS_CODING_CONTEXT_H
#define PREDBUS_CODING_CONTEXT_H

#include <array>
#include <vector>

#include "coding/predictive.h"

namespace predbus::coding
{

/** Configuration for the context dictionary. */
struct ContextConfig
{
    unsigned table_size = 28;
    unsigned sr_size = 8;
    u32 divide_period = 4096;  ///< counter division time; 0 = never
    bool transition_based = false;
    /**
     * Ablation: replace the paper's pending-bit neighbor-swap sorting
     * with an oracle full sort every cycle (what unrestricted-swap
     * hardware would achieve, at O(n^2) wiring cost the paper rejects
     * in §5.3.1).
     */
    bool oracle_sort = false;
};

class ContextDict;

namespace detail
{
/** Batch encode kernel for context transcoders: the predictive
 * per-word algorithm with the key probe, SR shift/promotion,
 * pending-mask sorting step, and raw-choice cost math inlined into
 * one loop (AVX2+popcnt variant selected at runtime). Defined in
 * context.cpp; byte-identical to encode(). */
void contextEncodeSpan(ContextDict &dict, const Word *in, u64 *out,
                       std::size_t n, u64 &state, Word &last,
                       bool &has_last, OpCounts &ops, double lambda,
                       bool cost_aware);
} // namespace detail

class ContextDict
{
  public:
    explicit ContextDict(const ContextConfig &config);

    LookupResult access(Word v, OpCounts *ops);
    Word valueAt(unsigned index) const;
    void reset();

    /** Serialize / restore both stores, the pending mask, and the
     * cycle/prev scalars (snapshot.h). The configuration is not
     * state: load() fails the reader on a config mismatch. */
    void save(StateWriter &w) const;
    void load(StateReader &r);

    unsigned tableSize() const { return cfg.table_size; }
    unsigned srSize() const { return cfg.sr_size; }
    const ContextConfig &config() const { return cfg; }

    /** Counter of table position @p i (tests). */
    u32 tableCount(unsigned i) const { return tab_counts[i]; }
    bool tableValid(unsigned i) const { return i < valid_count; }
    u64 tableKey(unsigned i) const { return tab_keys[i]; }
    unsigned validCount() const { return valid_count; }

    /** Invariant 2 check: counters non-increasing down the table. */
    bool sortedByCount() const;

    /** Saturation value of the 4x4-bit Johnson counters. */
    static constexpr u32 kCounterMax = 4095;

  private:
    friend void detail::contextEncodeSpan(ContextDict &, const Word *,
                                          u64 *, std::size_t, u64 &,
                                          Word &, bool &, OpCounts &,
                                          double, bool);

    u64 makeKey(Word v) const;
    void sortStep(OpCounts *ops);
    void divideCounters(OpCounts *ops);
    /** Miss path: shift @p key into the SR, possibly promoting the
     * displaced entry into the table (shared by access() and the span
     * kernel so the two can never drift). */
    void missInsert(u64 key, OpCounts *ops);

    bool pendTest(unsigned p) const
    {
        return (pend[p >> 6] >> (p & 63)) & 1u;
    }
    void pendSet(unsigned p) { pend[p >> 6] |= u64{1} << (p & 63); }
    void pendClear(unsigned p)
    {
        pend[p >> 6] &= ~(u64{1} << (p & 63));
    }

    ContextConfig cfg;
    std::vector<u64> tab_keys;    ///< padded to whole 4-lane blocks
    std::vector<u32> tab_counts;  ///< position 0 = most frequent
    std::array<u64, 2> pend{};    ///< pending bits by table position
    std::vector<u64> sr_keys;     ///< padded to whole 4-lane blocks
    std::vector<u32> sr_counts;
    unsigned sr_head = 0;
    unsigned sr_filled = 0;       ///< dense prefix of valid SR entries
    unsigned valid_count = 0;     ///< dense prefix of valid table rows
    u64 cycle = 0;
    Word prev = 0;                ///< previous value (transition keys)
};

/** Context-based transcoders. */
using ContextTranscoder = PredictiveTranscoder<ContextDict>;

/** Context family hot path: route spans through the fused kernel. */
template <>
void PredictiveTranscoder<ContextDict>::encodeSpan(const Word *in,
                                                   u64 *out,
                                                   std::size_t n);

} // namespace predbus::coding

#endif // PREDBUS_CODING_CONTEXT_H
