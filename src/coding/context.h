/**
 * @file
 * Context-based dictionary (paper §4.3 Figs 12-14, §5.3): a staging
 * shift register with frequency counts in front of a frequency table
 * kept sorted by the paper's pending-bit neighbor-swap algorithm
 * (§5.3.1, Fig 27).
 *
 * Invariant 1: every resident tag is unique (at most one match).
 * Invariant 2: table entries are ordered by non-increasing counter
 * value, so the table position *is* the code and the most frequent
 * values get the lowest-weight codes.
 *
 * The value-based flavor keys on bus values (Fig 13); the
 * transition-based flavor keys on (previous, current) value pairs
 * (Fig 14).
 */

#ifndef PREDBUS_CODING_CONTEXT_H
#define PREDBUS_CODING_CONTEXT_H

#include <vector>

#include "coding/predictive.h"

namespace predbus::coding
{

/** Configuration for the context dictionary. */
struct ContextConfig
{
    unsigned table_size = 28;
    unsigned sr_size = 8;
    u32 divide_period = 4096;  ///< counter division time; 0 = never
    bool transition_based = false;
    /**
     * Ablation: replace the paper's pending-bit neighbor-swap sorting
     * with an oracle full sort every cycle (what unrestricted-swap
     * hardware would achieve, at O(n^2) wiring cost the paper rejects
     * in §5.3.1).
     */
    bool oracle_sort = false;
};

class ContextDict
{
  public:
    explicit ContextDict(const ContextConfig &config);

    LookupResult access(Word v, OpCounts *ops);
    Word valueAt(unsigned index) const;
    void reset();

    unsigned tableSize() const { return cfg.table_size; }
    unsigned srSize() const { return cfg.sr_size; }

    /** Counter of table position @p i (tests). */
    u32 tableCount(unsigned i) const { return table[i].count; }
    bool tableValid(unsigned i) const { return table[i].valid; }
    u64 tableKey(unsigned i) const { return table[i].key; }
    unsigned validCount() const { return valid_count; }

    /** Invariant 2 check: counters non-increasing down the table. */
    bool sortedByCount() const;

  private:
    struct TabEntry
    {
        u64 key = 0;
        u32 count = 0;
        bool pending = false;
        bool valid = false;
    };
    struct SrEntry
    {
        u64 key = 0;
        u32 count = 0;
        bool valid = false;
    };

    u64 makeKey(Word v) const;
    void sortStep(OpCounts *ops);
    void divideCounters(OpCounts *ops);

    static constexpr u32 kCounterMax = 4095;  ///< 4x4-bit Johnson

    ContextConfig cfg;
    std::vector<TabEntry> table;   ///< position 0 = most frequent
    std::vector<SrEntry> sr;
    unsigned sr_head = 0;
    unsigned valid_count = 0;      ///< dense prefix of valid entries
    u64 cycle = 0;
    Word prev = 0;                 ///< previous value (transition keys)
};

/** Context-based transcoders. */
using ContextTranscoder = PredictiveTranscoder<ContextDict>;

} // namespace predbus::coding

#endif // PREDBUS_CODING_CONTEXT_H
