/**
 * @file
 * Construction helpers for all the paper's coding schemes.
 */

#ifndef PREDBUS_CODING_FACTORY_H
#define PREDBUS_CODING_FACTORY_H

#include <memory>
#include <string>

#include "coding/codec.h"
#include "coding/context.h"

namespace predbus::coding
{

/** The unencoded 32-wire bus (baseline). */
std::unique_ptr<Transcoder> makeRaw();

/** Window-based transcoder with @p entries (paper default 8).
 * @p cost_aware enables the encoder-side raw-vs-code cost comparison
 * (extension; see PredictiveTranscoder). */
std::unique_ptr<Transcoder> makeWindow(unsigned entries,
                                       double lambda = 1.0,
                                       bool cost_aware = false);

/** Context-based transcoder (value- or transition-based). */
std::unique_ptr<Transcoder> makeContext(const ContextConfig &config,
                                        double lambda = 1.0);

/** Multi-stride transcoder with intervals 1..@p strides. */
std::unique_ptr<Transcoder> makeStride(unsigned strides,
                                       double lambda = 1.0);

/** Generalized inversion coder; @p assumed_lambda is the λ the
 * selection logic optimizes for (paper's λ0/λ1/λN). */
std::unique_ptr<Transcoder> makeInversion(unsigned patterns,
                                          double assumed_lambda);

/** One-hot spatial coder over @p input_bits-wide values. */
std::unique_ptr<Transcoder> makeSpatial(unsigned input_bits);

/** Partial bus-invert [20]: @p groups independent invert segments. */
std::unique_ptr<Transcoder> makePartialInvert(unsigned groups,
                                              double assumed_lambda);

/** Working-zone encoding [15] with @p zones zone registers. */
std::unique_ptr<Transcoder> makeWorkZone(unsigned zones);

/**
 * Build a transcoder from a textual spec (for tools and scripts):
 *   "raw"                  unencoded baseline
 *   "window:N[:ca]"        window, N entries, optional cost-aware
 *   "ctx:T+S[:trans][:dD]" context, table T, SR S, optional
 *                          transition-based, optional divide period D
 *   "stride:K"             strides 1..K
 *   "inv:P[:l<lambda>]"    inversion, P patterns, assumed lambda
 *   "pbi:G"                partial bus-invert, G groups
 *   "wze:Z"                working-zone encoding, Z zones
 *   "spatial:B"            one-hot over B input bits
 * Throws FatalError on malformed specs.
 */
std::unique_ptr<Transcoder> makeFromSpec(const std::string &spec);

} // namespace predbus::coding

#endif // PREDBUS_CODING_FACTORY_H
