/**
 * @file
 * Wire-event accounting (paper Eqs. 1-3) and trace evaluation.
 */

#ifndef PREDBUS_CODING_BUS_ENERGY_H
#define PREDBUS_CODING_BUS_ENERGY_H

#include <span>
#include <vector>

#include "coding/codec.h"
#include "common/types.h"

namespace predbus::coding
{

/**
 * Accumulates tau (self transitions, Eq. 2) and kappa (coupling
 * events, Eq. 3) over a stream of bus wire states up to 64 wires wide.
 */
class BusEnergyMeter
{
  public:
    explicit BusEnergyMeter(unsigned n_wires);

    /** Account the transition from the previous state to @p state. */
    void observe(u64 state);

    /** Account a span of consecutive states: equal to observe() per
     * element, with the running state and totals kept in locals. */
    void observeSpan(const u64 *states, std::size_t n);
    void observeSpan(const Word *values, std::size_t n);

    const EnergyCount &count() const { return total; }
    void reset();

    /** Serialize / restore the running wire state and totals
     * (snapshot.h); the wire count is config and must match. */
    void save(StateWriter &w) const;
    void load(StateReader &r);

  private:
    template <typename T>
    void observeSpanImpl(const T *states, std::size_t n);

    unsigned width;
    u64 prev = 0;
    bool first = true;
    EnergyCount total;
};

/** Wire events of the unencoded 32-bit bus carrying @p values. */
EnergyCount measureUnencoded(std::span<const Word> values);

/** Result of running one transcoder over one trace. */
struct CodingResult
{
    EnergyCount base;    ///< unencoded 32-wire bus
    EnergyCount coded;   ///< coded bus (width() wires)
    OpCounts ops;        ///< encoder operation counts
    u64 words = 0;

    /**
     * Fraction of wire energy removed at coupling ratio @p lambda
     * (positive = coding saves events). This is the quantity the
     * paper plots as "Normalized Energy Removed".
     */
    double
    removedFraction(double lambda) const
    {
        const double b = base.cost(lambda);
        return (b > 0.0) ? 1.0 - coded.cost(lambda) / b : 0.0;
    }
};

/**
 * Incremental trace evaluation: feed values in chunks, then collect
 * the CodingResult. Feeding one whole-trace span is equivalent to the
 * one-shot evaluate() below; the chunked form lets callers stream
 * traces (trace::TraceSource) without materializing them.
 */
class StreamingEvaluator
{
  public:
    /** Resets @p codec; it must outlive the evaluator. */
    explicit StreamingEvaluator(Transcoder &codec,
                                bool verify_decode = false);

    /** Process the next chunk of the trace. Internally batched
     * through the codec's span API in fixed-size pieces, so callers
     * may feed any granularity without a throughput penalty. */
    void feed(std::span<const Word> values);

    /** Totals over everything fed so far. */
    CodingResult result() const;

  private:
    /** Span batching granularity: large enough to amortize dispatch,
     * small enough to keep the scratch buffers in L2. */
    static constexpr std::size_t kFeedChunk = 8192;

    Transcoder &codec;
    bool verify;
    BusEnergyMeter base_meter;
    BusEnergyMeter coded_meter;
    u64 words = 0;
    std::vector<u64> enc_buf;
    std::vector<Word> dec_buf;
};

/**
 * Run @p codec over @p values (resetting it first), metering both the
 * unencoded baseline and the coded bus. With @p verify_decode, every
 * word is round-tripped through the decoder and mismatches throw
 * PanicError (used by the tests).
 */
CodingResult evaluate(Transcoder &codec, std::span<const Word> values,
                      bool verify_decode = false);

} // namespace predbus::coding

#endif // PREDBUS_CODING_BUS_ENERGY_H
