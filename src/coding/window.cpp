#include "coding/window.h"

namespace predbus::coding
{

WindowDict::WindowDict(unsigned n_entries)
{
    if (n_entries == 0 || n_entries > kMaxCodePoints)
        fatal("window size must be 1..", kMaxCodePoints);
    vals.assign(n_entries, 0);
    valid.assign(n_entries, false);
}

LookupResult
WindowDict::access(Word v, OpCounts *ops)
{
    if (ops)
        ++ops->matches;
    for (unsigned i = 0; i < vals.size(); ++i) {
        if (valid[i] && vals[i] == v)
            return LookupResult{true, i};
    }
    // Miss: replace the oldest entry (pointer-based shift).
    vals[head] = v;
    valid[head] = true;
    head = (head + 1) % vals.size();
    if (ops)
        ++ops->shifts;
    return LookupResult{false, 0};
}

Word
WindowDict::valueAt(unsigned index) const
{
    panicIf(index >= vals.size(), "window index out of range");
    return vals[index];
}

void
WindowDict::reset()
{
    std::fill(valid.begin(), valid.end(), false);
    std::fill(vals.begin(), vals.end(), 0);
    head = 0;
}

bool
WindowDict::contains(Word v) const
{
    for (unsigned i = 0; i < vals.size(); ++i)
        if (valid[i] && vals[i] == v)
            return true;
    return false;
}

} // namespace predbus::coding
