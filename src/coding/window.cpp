#include "coding/window.h"

#include <algorithm>

#include "coding/span_kernel.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace predbus::coding
{

namespace
{

using detail::applyHit;
using detail::applyMiss;

using ProbeFn = int (*)(const Word *, unsigned, Word);

int
probeScalar(const Word *vals, unsigned filled, Word v)
{
    for (unsigned i = 0; i < filled; ++i)
        if (vals[i] == v)
            return static_cast<int>(i);
    return -1;
}

#if defined(__x86_64__)
// The vals array is padded to whole 8-lane blocks, so the unaligned
// loads never run past the allocation; lanes at or beyond `filled`
// are masked out of the match bitmap (padding holds zeros, which a
// probe for value 0 must not hit).
__attribute__((target("avx2"))) int
probeAvx2(const Word *vals, unsigned filled, Word v)
{
    const __m256i needle = _mm256_set1_epi32(static_cast<int>(v));
    for (unsigned b = 0; b < filled; b += 8) {
        const __m256i block = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(vals + b));
        unsigned mask =
            static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(
                _mm256_cmpeq_epi32(block, needle))));
        const unsigned remain = filled - b;
        if (remain < 8)
            mask &= (1u << remain) - 1u;
        if (mask)
            return static_cast<int>(b + __builtin_ctz(mask));
    }
    return -1;
}
#endif

ProbeFn
pickProbe()
{
#if defined(__x86_64__)
    if (detail::useAvx2Kernels())
        return probeAvx2;
#endif
    return probeScalar;
}

const ProbeFn g_probe = pickProbe();

// The fused span kernels: WindowDict::access() and the predictive
// encode logic in one loop, FSM scalars and dictionary cursor in
// locals, op counts batched. The bodies must stay identical except
// for the probe — the AVX2 variants are additionally compiled with
// popcnt, so the transition-cost popcounts become single
// instructions (results are bit-identical; only the instruction
// selection changes). Counter and update ordering matches
// PredictiveTranscoder::encode() + WindowDict::access().

// A repeat (value == last) always probes as a hit — the previous
// access of the same value either hit (no dictionary change) or
// inserted it, and hits never mutate the dictionary — so the repeat
// fast path below skips the probe and insert entirely; only the
// matches counter (which access() bumps unconditionally) and the
// last-hit counter advance. This is byte-identical to the per-word
// path, which probes on repeats but is guaranteed a hit.
#define PREDBUS_WINDOW_SPAN_BODY(PROBE)                                \
    const bool unit_lambda = lambda == 1.0;                            \
    u64 state = state_ref;                                             \
    Word last = last_ref;                                              \
    bool has_last = has_last_ref;                                      \
    unsigned filled = filled_ref;                                      \
    unsigned head = head_ref;                                          \
    OpCounts ops;                                                      \
    for (std::size_t i = 0; i < n_words; ++i) {                        \
        const Word value = in[i];                                      \
        ++ops.cycles;                                                  \
        ++ops.matches;                                                 \
        if (has_last && value == last) {                               \
            ++ops.last_hits;                                           \
            out[i] = state;                                            \
            continue;                                                  \
        }                                                              \
        const int idx = PROBE(vals, filled, value);                    \
        if (idx >= 0) {                                                \
            applyHit(state, static_cast<unsigned>(idx), ops, value,    \
                     lambda, cost_aware, unit_lambda);                 \
        } else {                                                       \
            vals[head] = value;                                        \
            head = head + 1 == wn ? 0 : head + 1;                      \
            if (filled < wn)                                           \
                ++filled;                                              \
            ++ops.shifts;                                              \
            applyMiss(state, ops, value, lambda, unit_lambda);         \
        }                                                              \
        last = value;                                                  \
        has_last = true;                                               \
        out[i] = state;                                                \
    }                                                                  \
    state_ref = state;                                                 \
    last_ref = last;                                                   \
    has_last_ref = has_last;                                           \
    filled_ref = filled;                                               \
    head_ref = head;                                                   \
    ops_out += ops;

void
winSpanScalar(Word *vals, unsigned wn, unsigned &filled_ref,
              unsigned &head_ref, const Word *in, u64 *out,
              std::size_t n_words, u64 &state_ref, Word &last_ref,
              bool &has_last_ref, OpCounts &ops_out, double lambda,
              bool cost_aware)
{
    PREDBUS_WINDOW_SPAN_BODY(probeScalar)
}

#if defined(__x86_64__)
__attribute__((target("avx2,popcnt"))) void
winSpanAvx2(Word *vals, unsigned wn, unsigned &filled_ref,
            unsigned &head_ref, const Word *in, u64 *out,
            std::size_t n_words, u64 &state_ref, Word &last_ref,
            bool &has_last_ref, OpCounts &ops_out, double lambda,
            bool cost_aware)
{
    PREDBUS_WINDOW_SPAN_BODY(probeAvx2)
}

// Blend selectors for the register-resident kernel: row h has lane h
// all-ones, so blendv writes exactly the head lane.
alignas(32) constexpr u32 kLaneMask[8][8] = {
    {~0u, 0, 0, 0, 0, 0, 0, 0}, {0, ~0u, 0, 0, 0, 0, 0, 0},
    {0, 0, ~0u, 0, 0, 0, 0, 0}, {0, 0, 0, ~0u, 0, 0, 0, 0},
    {0, 0, 0, 0, ~0u, 0, 0, 0}, {0, 0, 0, 0, 0, ~0u, 0, 0},
    {0, 0, 0, 0, 0, 0, ~0u, 0}, {0, 0, 0, 0, 0, 0, 0, ~0u},
};

// wn <= 8 fast path: the whole dictionary lives in one YMM register
// across the loop, so the CAM probe is a compare + movemask with no
// loads and the miss insert is a blend. Lanes at or beyond `filled`
// hold zeros and are masked out of the match bitmap via `valid`;
// lanes at or beyond wn are never written (head < wn), so storing
// the full register back preserves the padding zeros. Lowest set
// bit of the movemask is the lowest index, matching first-match
// probe order (resident values are unique anyway).
__attribute__((target("avx2,popcnt"))) void
winSpanAvx2Small(Word *vals, unsigned wn, unsigned &filled_ref,
                 unsigned &head_ref, const Word *in, u64 *out,
                 std::size_t n_words, u64 &state_ref, Word &last_ref,
                 bool &has_last_ref, OpCounts &ops_out, double lambda,
                 bool cost_aware)
{
    const bool unit_lambda = lambda == 1.0;
    u64 state = state_ref;
    Word last = last_ref;
    bool has_last = has_last_ref;
    unsigned filled = filled_ref;
    unsigned head = head_ref;
    OpCounts ops;
    __m256i dict = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(vals));
    unsigned valid = (1u << filled) - 1u;
    for (std::size_t i = 0; i < n_words; ++i) {
        const Word value = in[i];
        ++ops.cycles;
        ++ops.matches;
        if (has_last && value == last) {
            ++ops.last_hits;
            out[i] = state;
            continue;
        }
        const __m256i needle =
            _mm256_set1_epi32(static_cast<int>(value));
        const unsigned mask =
            static_cast<unsigned>(_mm256_movemask_ps(
                _mm256_castsi256_ps(
                    _mm256_cmpeq_epi32(dict, needle)))) &
            valid;
        if (mask) {
            applyHit(state,
                     static_cast<unsigned>(__builtin_ctz(mask)), ops,
                     value, lambda, cost_aware, unit_lambda);
        } else {
            dict = _mm256_blendv_epi8(
                dict, needle,
                _mm256_load_si256(reinterpret_cast<const __m256i *>(
                    kLaneMask[head])));
            head = head + 1 == wn ? 0 : head + 1;
            if (filled < wn) {
                ++filled;
                valid = (1u << filled) - 1u;
            }
            ++ops.shifts;
            applyMiss(state, ops, value, lambda, unit_lambda);
        }
        last = value;
        has_last = true;
        out[i] = state;
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(vals), dict);
    state_ref = state;
    last_ref = last;
    has_last_ref = has_last;
    filled_ref = filled;
    head_ref = head;
    ops_out += ops;
}
#endif

#undef PREDBUS_WINDOW_SPAN_BODY

} // namespace

namespace detail
{

void
windowEncodeSpan(WindowDict &dict, const Word *in, u64 *out,
                 std::size_t n, u64 &state, Word &last, bool &has_last,
                 OpCounts &ops, double lambda, bool cost_aware)
{
#if defined(__x86_64__)
    if (g_probe != probeScalar) {
        auto kernel = dict.n <= 8 ? winSpanAvx2Small : winSpanAvx2;
        kernel(dict.vals.data(), dict.n, dict.filled, dict.head, in,
               out, n, state, last, has_last, ops, lambda, cost_aware);
        return;
    }
#endif
    winSpanScalar(dict.vals.data(), dict.n, dict.filled, dict.head, in,
                  out, n, state, last, has_last, ops, lambda,
                  cost_aware);
}

} // namespace detail

template <>
void
PredictiveTranscoder<WindowDict>::encodeSpan(const Word *in, u64 *out,
                                             std::size_t n)
{
    OpCounts ops;
    detail::windowEncodeSpan(enc_dict, in, out, n, enc_state, enc_last,
                             enc_has_last, ops, lambda, cost_aware);
    op_counts += ops;
}

const char *
windowProbeKind()
{
    return g_probe == probeScalar ? "scalar" : "avx2";
}

WindowDict::WindowDict(unsigned n_entries)
{
    if (n_entries == 0 || n_entries > kMaxCodePoints)
        fatal("window size must be 1..", kMaxCodePoints);
    n = n_entries;
    vals.assign((n + 7u) & ~7u, 0);
}

int
WindowDict::find(Word v) const
{
    return g_probe(vals.data(), filled, v);
}

LookupResult
WindowDict::access(Word v, OpCounts *ops)
{
    if (ops)
        ++ops->matches;
    const int i = find(v);
    if (i >= 0)
        return LookupResult{true, static_cast<unsigned>(i)};
    // Miss: replace the oldest entry (pointer-based shift). Before the
    // first wraparound head == filled, so the insert extends the dense
    // valid prefix; afterwards every slot is live and filled stays n.
    vals[head] = v;
    head = head + 1 == n ? 0 : head + 1;
    if (filled < n)
        ++filled;
    if (ops)
        ++ops->shifts;
    return LookupResult{false, 0};
}

Word
WindowDict::valueAt(unsigned index) const
{
    panicIf(index >= n, "window index out of range");
    return vals[index];
}

void
WindowDict::reset()
{
    std::fill(vals.begin(), vals.end(), 0);
    filled = 0;
    head = 0;
}

bool
WindowDict::contains(Word v) const
{
    return find(v) >= 0;
}

void
WindowDict::save(StateWriter &w) const
{
    w.writeU32(n);
    w.writeU32(filled);
    w.writeU32(head);
    w.writeU32(static_cast<u32>(vals.size()));
    for (const Word v : vals)
        w.writeU32(v);
}

void
WindowDict::load(StateReader &r)
{
    const u32 s_n = r.readU32();
    const u32 s_filled = r.readU32();
    const u32 s_head = r.readU32();
    const u32 s_len = r.readU32();
    if (s_n != n || s_filled > n || s_head >= n ||
        s_len != vals.size()) {
        r.markFailed();
        return;
    }
    for (Word &v : vals)
        v = r.readU32();
    filled = s_filled;
    head = s_head;
}

} // namespace predbus::coding
