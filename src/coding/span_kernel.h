/**
 * @file
 * Internal building blocks shared by the fused span kernels
 * (window.cpp, context.cpp, stride.cpp): the exact hit/miss wire-state
 * updates of PredictiveTranscoder::encode(), the unit-lambda integer
 * cost shortcut, and the SIMD-dispatch policy (AVX2 detection plus the
 * PREDBUS_FORCE_SCALAR=1 override that pins every kernel to its scalar
 * fallback for differential testing on SIMD hosts).
 *
 * Everything here is an implementation detail of src/coding — the
 * kernels must stay byte-identical to the per-word paths, and keeping
 * the state-update steps in one place is what guarantees it.
 */

#ifndef PREDBUS_CODING_SPAN_KERNEL_H
#define PREDBUS_CODING_SPAN_KERNEL_H

#include <cstdlib>

#include "coding/codec.h"
#include "coding/protocol.h"

namespace predbus::coding::detail
{

/**
 * True when PREDBUS_FORCE_SCALAR=1 (or any value other than "0" or
 * empty) is set: runtime SIMD dispatch must select the scalar
 * fallback. Read once; the kernels cache their choice at static init.
 */
inline bool
forceScalarKernels()
{
    const char *env = std::getenv("PREDBUS_FORCE_SCALAR");
    return env != nullptr && env[0] != '\0' && !(env[0] == '0' &&
                                                 env[1] == '\0');
}

/** True when the fused kernels should use their AVX2 variants. */
inline bool
useAvx2Kernels()
{
#if defined(__x86_64__)
    return __builtin_cpu_supports("avx2") && !forceScalarKernels();
#else
    return false;
#endif
}

// Integer transition cost at lambda == 1: tau and kappa are exact
// small integers (<= 67), so comparing their integer sums decides
// exactly like comparing the doubles tau + 1.0 * kappa — the fused
// kernels use this to keep the raw-choice math off the FPU in the
// (default) lambda == 1 configuration.
inline int
costAtUnitLambda(u64 from, u64 to)
{
    return hammingDistance(from, to) +
           couplingEvents(from, to, kCodedWidth);
}

inline u64
chooseRawStateUnitLambda(u64 cur, Word value)
{
    const u64 cand_raw = withCtl(value, CtlState::Raw);
    const u64 cand_inv =
        withCtl(~u64{value} & kDataMask, CtlState::RawInv);
    return costAtUnitLambda(cur, cand_raw) <=
                   costAtUnitLambda(cur, cand_inv)
               ? cand_raw
               : cand_inv;
}

// State-update steps shared by every fused kernel. These are the
// exact computations PredictiveTranscoder::encode() performs on a
// dictionary hit / miss; keeping them in one place guarantees the
// scalar and AVX2 kernels of every family stay byte-identical.
inline void
applyHit(u64 &state, unsigned idx, OpCounts &ops, Word value,
         double lambda, bool cost_aware, bool unit_lambda)
{
    const u64 code_state = withCtl(
        (state ^ codeVector(idx)) & kDataMask, CtlState::Code);
    if (cost_aware) {
        const u64 raw_state =
            unit_lambda ? chooseRawStateUnitLambda(state, value)
                        : chooseRawState(state, value, lambda);
        bool raw_cheaper;
        if (unit_lambda) {
            raw_cheaper = costAtUnitLambda(state, raw_state) <
                          costAtUnitLambda(state, code_state);
        } else {
            raw_cheaper =
                transitionCost(state, raw_state, kCodedWidth, lambda) <
                transitionCost(state, code_state, kCodedWidth, lambda);
        }
        if (raw_cheaper) {
            ++ops.raw_sends;
            state = raw_state;
        } else {
            ++ops.hits;
            state = code_state;
        }
    } else {
        ++ops.hits;
        state = code_state;
    }
}

inline void
applyMiss(u64 &state, OpCounts &ops, Word value, double lambda,
          bool unit_lambda)
{
    ++ops.raw_sends;
    state = unit_lambda ? chooseRawStateUnitLambda(state, value)
                        : chooseRawState(state, value, lambda);
}

} // namespace predbus::coding::detail

#endif // PREDBUS_CODING_SPAN_KERNEL_H
