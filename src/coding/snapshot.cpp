#include "coding/snapshot.h"

#include "coding/codec.h"

namespace predbus::coding
{

u64
snapshotChecksum(const u8 *data, std::size_t n)
{
    u64 sum = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        sum ^= data[i];
        sum *= 0x100000001b3ull;
    }
    return sum;
}

void
saveOpCounts(StateWriter &w, const OpCounts &ops)
{
    w.writeU64(ops.cycles);
    w.writeU64(ops.matches);
    w.writeU64(ops.shifts);
    w.writeU64(ops.counter_incs);
    w.writeU64(ops.compares);
    w.writeU64(ops.swaps);
    w.writeU64(ops.divisions);
    w.writeU64(ops.raw_sends);
    w.writeU64(ops.hits);
    w.writeU64(ops.last_hits);
}

void
loadOpCounts(StateReader &r, OpCounts &ops)
{
    ops.cycles = r.readU64();
    ops.matches = r.readU64();
    ops.shifts = r.readU64();
    ops.counter_incs = r.readU64();
    ops.compares = r.readU64();
    ops.swaps = r.readU64();
    ops.divisions = r.readU64();
    ops.raw_sends = r.readU64();
    ops.hits = r.readU64();
    ops.last_hits = r.readU64();
}

void
saveEnergyCount(StateWriter &w, const EnergyCount &count)
{
    w.writeU64(count.tau);
    w.writeU64(count.kappa);
}

void
loadEnergyCount(StateReader &r, EnergyCount &count)
{
    count.tau = r.readU64();
    count.kappa = r.readU64();
}

} // namespace predbus::coding
