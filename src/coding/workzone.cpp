#include "coding/workzone.h"

#include <bit>

#include "common/bitops.h"
#include "coding/snapshot.h"
#include "common/log.h"

namespace predbus::coding
{

WorkZoneCoder::WorkZoneCoder(unsigned zones) : n_zones(zones)
{
    if (zones == 0 || zones > 16 || !std::has_single_bit(zones))
        fatal("workzone: zone count must be a power of two in [1,16]");
    zone_bits = static_cast<unsigned>(std::countr_zero(zones));
    total_width = kDataWidth + 1 + zone_bits;
    enc.zones.resize(zones);
    dec.zones.resize(zones);
}

std::string
WorkZoneCoder::name() const
{
    return "wze" + std::to_string(n_zones);
}

unsigned
WorkZoneCoder::offsetIndex(s32 delta)
{
    panicIf(delta == 0 || delta < -kRange || delta > kRange,
            "workzone: offset out of range");
    return delta > 0 ? static_cast<unsigned>(delta - 1)
                     : static_cast<unsigned>(16 + (-delta - 1));
}

s32
WorkZoneCoder::indexOffset(unsigned index)
{
    panicIf(index >= 32, "workzone: bad offset index");
    return index < 16 ? static_cast<s32>(index + 1)
                      : -static_cast<s32>(index - 16 + 1);
}

u64
WorkZoneCoder::encode(Word value)
{
    ++op_counts.cycles;

    // Find the closest zone within range.
    int best_zone = -1;
    s32 best_delta = 0;
    for (unsigned z = 0; z < n_zones; ++z) {
        if (!enc.zones[z].valid)
            continue;
        const s32 delta =
            static_cast<s32>(value - enc.zones[z].prev);
        if (delta < -kRange || delta > kRange)
            continue;
        if (best_zone < 0 ||
            std::abs(delta) < std::abs(best_delta)) {
            best_zone = static_cast<int>(z);
            best_delta = delta;
        }
    }
    ++op_counts.matches;

    u64 next;
    if (best_zone >= 0) {
        ++op_counts.hits;
        if (best_delta == 0)
            ++op_counts.last_hits;
        u64 data = enc.state & maskLow(kDataWidth);
        if (best_delta != 0)
            data ^= u64{1} << offsetIndex(best_delta);
        next = data | (u64{1} << kDataWidth) |
               (u64{static_cast<unsigned>(best_zone)}
                << (kDataWidth + 1));
        Zone &zone = enc.zones[static_cast<unsigned>(best_zone)];
        zone.prev = value;
        zone.lru = ++enc.use_counter;
    } else {
        ++op_counts.raw_sends;
        // Replace the LRU (or first invalid) zone.
        unsigned victim = 0;
        for (unsigned z = 0; z < n_zones; ++z) {
            if (!enc.zones[z].valid) {
                victim = z;
                break;
            }
            if (enc.zones[z].lru < enc.zones[victim].lru)
                victim = z;
        }
        Zone &zone = enc.zones[victim];
        zone.prev = value;
        zone.valid = true;
        zone.lru = ++enc.use_counter;
        ++op_counts.shifts;
        next = u64{value} | (u64{victim} << (kDataWidth + 1));
    }
    enc.state = next;
    return next;
}

Word
WorkZoneCoder::decode(u64 wire_state)
{
    const bool hit = (wire_state >> kDataWidth) & 1;
    const unsigned z = static_cast<unsigned>(
        (wire_state >> (kDataWidth + 1)) & maskLow(zone_bits));
    Word value;
    if (hit) {
        panicIf(z >= n_zones || !dec.zones[z].valid,
                "workzone: hit on invalid zone");
        const u64 flips = (wire_state ^ dec.state) & maskLow(kDataWidth);
        if (flips == 0) {
            value = dec.zones[z].prev;
        } else {
            panicIf(popcount(flips) != 1,
                    "workzone: non-one-hot offset");
            const unsigned index = static_cast<unsigned>(
                std::countr_zero(flips));
            value = dec.zones[z].prev +
                    static_cast<Word>(indexOffset(index));
        }
        dec.zones[z].prev = value;
        dec.zones[z].lru = ++dec.use_counter;
    } else {
        value = static_cast<Word>(wire_state & maskLow(kDataWidth));
        Zone &zone = dec.zones[z];
        zone.prev = value;
        zone.valid = true;
        zone.lru = ++dec.use_counter;
    }
    dec.state = wire_state;
    return value;
}

// Devirtualized batch loops over the per-word paths.
void
WorkZoneCoder::encodeSpan(const Word *in, u64 *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = WorkZoneCoder::encode(in[i]);
}

void
WorkZoneCoder::decodeSpan(const u64 *in, Word *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = WorkZoneCoder::decode(in[i]);
}

void
WorkZoneCoder::resetState()
{
    enc = Fsm{};
    dec = Fsm{};
    enc.zones.assign(n_zones, Zone{});
    dec.zones.assign(n_zones, Zone{});
}

void
WorkZoneCoder::saveState(StateWriter &w) const
{
    w.writeU32(n_zones);
    for (const Fsm *f : {&enc, &dec}) {
        for (const Zone &z : f->zones) {
            w.writeU32(z.prev);
            w.writeBool(z.valid);
            w.writeU64(z.lru);
        }
        w.writeU64(f->state);
        w.writeU64(f->use_counter);
    }
}

void
WorkZoneCoder::loadState(StateReader &r)
{
    if (r.readU32() != n_zones) {
        r.markFailed();
        return;
    }
    for (Fsm *f : {&enc, &dec}) {
        for (Zone &z : f->zones) {
            z.prev = r.readU32();
            z.valid = r.readBool();
            z.lru = r.readU64();
        }
        f->state = r.readU64();
        f->use_counter = r.readU64();
    }
}

} // namespace predbus::coding
