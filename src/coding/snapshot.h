/**
 * @file
 * Binary state serialization for transcoder FSMs and codec sessions.
 *
 * A CodecSessionSnapshot is the unit the session store (src/store)
 * spills to disk: a versioned, checksummed byte image of *everything*
 * a CodecSession owns — the factory spec, sequence number, rolling
 * stream checksum, epoch, energy-meter totals, and the complete FSM
 * state of both transcoder ends (dictionaries, history rings, wire
 * states, operation counters). CodecSession::restore() rebuilds a
 * session that continues the stream byte-identically: same wire
 * states, same checksums, same OpCounts, same energy totals as if the
 * session had never been serialized.
 *
 * Layout (all little-endian):
 *
 *   offset size  field
 *   0      4     magic "PBSS" (0x53534250)
 *   4      2     format version (kSnapshotVersion)
 *   6      2     reserved (0)
 *   8      ...   payload: spec string, session scalars, meter state,
 *                transcoder state (see session.cpp)
 *   end-8  8     FNV-1a 64 over every preceding byte
 *
 * Corruption anywhere — a flipped bit, a truncated tail, an oversized
 * length field — fails the checksum or runs the reader out of bounds
 * and restore() throws FatalError without constructing a session.
 *
 * StateWriter/StateReader are the (de)serialization primitives the
 * per-family Transcoder::saveState()/loadState() hooks use. The
 * reader is bounds-checked and *sticky*: any out-of-range read marks
 * it failed and every subsequent read returns zero, so load code can
 * run straight-line and check ok() once at the end.
 */

#ifndef PREDBUS_CODING_SNAPSHOT_H
#define PREDBUS_CODING_SNAPSHOT_H

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace predbus::coding
{

struct OpCounts;
struct EnergyCount;

/** Snapshot format magic ("PBSS") and current version. */
constexpr u32 kSnapshotMagic = 0x53534250;
constexpr u16 kSnapshotVersion = 1;

/** FNV-1a 64 over raw bytes (the snapshot integrity checksum). */
u64 snapshotChecksum(const u8 *data, std::size_t n);

/** Append-only little-endian byte sink. */
class StateWriter
{
  public:
    void
    writeU8(u8 v)
    {
        buf.push_back(v);
    }

    void
    writeU16(u16 v)
    {
        for (int i = 0; i < 2; ++i)
            buf.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void
    writeU32(u32 v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void
    writeU64(u64 v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void writeBool(bool v) { writeU8(v ? 1 : 0); }

    /** u32 length prefix + raw bytes. */
    void
    writeBytes(const void *data, std::size_t n)
    {
        writeU32(static_cast<u32>(n));
        const u8 *p = static_cast<const u8 *>(data);
        buf.insert(buf.end(), p, p + n);
    }

    void
    writeString(const std::string &s)
    {
        writeBytes(s.data(), s.size());
    }

    const std::vector<u8> &bytes() const { return buf; }
    std::vector<u8> take() { return std::move(buf); }

  private:
    std::vector<u8> buf;
};

/** Bounds-checked little-endian reader with a sticky failure flag. */
class StateReader
{
  public:
    explicit StateReader(std::span<const u8> bytes) : data(bytes) {}

    u8
    readU8()
    {
        u8 v = 0;
        if (take(1))
            v = data[pos - 1];
        return v;
    }

    u16
    readU16()
    {
        u16 v = 0;
        if (take(2))
            for (int i = 0; i < 2; ++i)
                v |= static_cast<u16>(data[pos - 2 + i]) << (8 * i);
        return v;
    }

    u32
    readU32()
    {
        u32 v = 0;
        if (take(4))
            for (int i = 0; i < 4; ++i)
                v |= static_cast<u32>(data[pos - 4 + i]) << (8 * i);
        return v;
    }

    u64
    readU64()
    {
        u64 v = 0;
        if (take(8))
            for (int i = 0; i < 8; ++i)
                v |= static_cast<u64>(data[pos - 8 + i]) << (8 * i);
        return v;
    }

    bool readBool() { return readU8() != 0; }

    /** Length-prefixed byte run; empty on any bound violation. */
    std::vector<u8>
    readBytes()
    {
        const u32 n = readU32();
        std::vector<u8> out;
        if (take(n)) {
            out.assign(data.begin() +
                           static_cast<std::ptrdiff_t>(pos - n),
                       data.begin() + static_cast<std::ptrdiff_t>(pos));
        }
        return out;
    }

    std::string
    readString()
    {
        const std::vector<u8> raw = readBytes();
        return std::string(raw.begin(), raw.end());
    }

    /** Record a semantic mismatch (wrong config, bad bound). */
    void
    markFailed()
    {
        failed = true;
    }

    bool ok() const { return !failed; }
    bool atEnd() const { return pos == data.size(); }
    std::size_t remaining() const { return data.size() - pos; }

  private:
    bool
    take(std::size_t n)
    {
        if (failed || n > data.size() - pos) {
            failed = true;
            return false;
        }
        pos += n;
        return true;
    }

    std::span<const u8> data;
    std::size_t pos = 0;
    bool failed = false;
};

/** OpCounts / EnergyCount field-by-field (shared by every family). */
void saveOpCounts(StateWriter &w, const OpCounts &ops);
void loadOpCounts(StateReader &r, OpCounts &ops);
void saveEnergyCount(StateWriter &w, const EnergyCount &count);
void loadEnergyCount(StateReader &r, EnergyCount &count);

} // namespace predbus::coding

#endif // PREDBUS_CODING_SNAPSHOT_H
