/**
 * @file
 * Spatial (one-hot) coder (paper §4.3, Fig 9).
 *
 * W_C = 2^W_B: every input value maps to a single wire, so any value
 * change costs exactly two transitions (one wire falls, one rises) at
 * an exponential area cost. Because the bus can have up to 2^20
 * wires, this coder meters its own tau/kappa analytically instead of
 * exposing wire states.
 */

#ifndef PREDBUS_CODING_SPATIAL_H
#define PREDBUS_CODING_SPATIAL_H

#include "coding/codec.h"

namespace predbus::coding
{

class SpatialCoder : public Transcoder
{
  public:
    /** @p input_bits <= 20; the coded bus has 2^input_bits wires. */
    explicit SpatialCoder(unsigned input_bits);

    std::string name() const override;
    unsigned width() const override { return 1u << in_bits; }
    /** Input values must fit in input_bits. Returns the value as an
     * opaque token (the one-hot position). */
    u64 encode(Word value) override;
    Word decode(u64 wire_state) override;

    bool metersInternally() const override { return true; }
    EnergyCount internalCount() const override { return count; }

  protected:
    void resetState() override;
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    unsigned in_bits;
    EnergyCount count;
    Word enc_cur = 0;
    bool enc_first = true;
};

} // namespace predbus::coding

#endif // PREDBUS_CODING_SPATIAL_H
