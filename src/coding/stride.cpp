#include "coding/stride.h"

#include <algorithm>

#include "coding/snapshot.h"
#include "common/log.h"
#include "coding/span_kernel.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace predbus::coding
{

namespace
{

using detail::applyMiss;

// Predictor sweep for one word: returns the lowest matching interval
// k (1-based), or 0 on a full miss. h points at the contiguous
// history window (h[0] = most recent); intervals with insufficient
// history (filled < 2k) can never hit, exactly like
// Fsm::predict() returning false in the per-word loop.
unsigned
findKScalar(const Word *h, std::size_t filled, unsigned K, Word v)
{
    const unsigned kmax =
        static_cast<unsigned>(std::min<std::size_t>(K, filled / 2));
    for (unsigned k = 1; k <= kmax; ++k) {
        const Word recent = h[k - 1];
        const Word pred =
            static_cast<Word>(recent + recent - h[2 * k - 1]);
        if (pred == v)
            return k;
    }
    return 0;
}

#if defined(__x86_64__)
// All 8 predictors in parallel for K == 8: lane b holds
// pred_{b+1} = 2*h[b] - h[2b+1]. The odd-indexed "older" operands
// h[1],h[3],...,h[15] are gathered from the two history vectors with
// one in-lane-crossing permute each and a blend. Intervals beyond
// filled/2 are masked out of the match bitmap; the lowest surviving
// lane is the lowest matching interval, matching the sequential
// sweep (the per-word loop also takes the smallest k).
//
// Bounds: the window buffer holds 2*win words with head <= win, so
// for K == 8 (win = 16, buffer 32) the h[8..15] load ends exactly at
// the allocation boundary. This kernel is only selected for K == 8.
__attribute__((target("avx2"))) unsigned
findKAvx2(const Word *h, std::size_t filled, unsigned K, Word v)
{
    (void)K;
    const __m256i recent = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(h));
    const __m256i older8 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(h + 8));
    const __m256i odd_lo = _mm256_permutevar8x32_epi32(
        recent, _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0));
    const __m256i odd_hi = _mm256_permutevar8x32_epi32(
        older8, _mm256_setr_epi32(0, 0, 0, 0, 1, 3, 5, 7));
    const __m256i older = _mm256_blend_epi32(odd_lo, odd_hi, 0xF0);
    const __m256i pred = _mm256_sub_epi32(
        _mm256_add_epi32(recent, recent), older);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(
            pred, _mm256_set1_epi32(static_cast<int>(v))))));
    const unsigned kmax =
        static_cast<unsigned>(std::min<std::size_t>(8, filled / 2));
    mask &= (1u << kmax) - 1u;
    return mask ? static_cast<unsigned>(__builtin_ctz(mask)) + 1 : 0;
}
#endif

// The fused stride span kernel. Three tiers per position:
//
//  1. Repeat run: L consecutive copies of the LAST value leave the
//     wire state untouched and only advance counters; the history
//     window afterwards is L copies of the value in front of the old
//     window (or saturated with it once L >= win), computable without
//     per-word work.
//  2. Constant-stride run: once interval 1 predicts in[i], every
//     following word whose delta keeps the same (nonzero) stride s is
//     again an interval-1 hit, because after pushing in[i+j-1] the
//     predictor extrapolates in[i+j-1] + s = in[i+j]. Interval-1 hits
//     toggle data bit 0 under Code control, so the output alternates
//     between two precomputed wire states, and the history window
//     after a saturating run is the closed form v_end - t*s.
//  3. Everything else goes through the predictor sweep (SIMD for
//     K == 8) plus the shared raw-choice math from span_kernel.h.
//
// Wire states, op counts, and FSM evolution are byte-identical to
// encode(): run words charge exactly one compare (the interval-1 hit
// the per-word loop breaks on), repeats charge none, sweep words
// charge k on a hit at interval k and K on a miss. The push logic
// mirrors Fsm::push() on the unpacked refs (the friend entry point
// below hands the kernel the FSM internals, window.cpp style). A
// macro rather than a template so the AVX2 kernel function's target
// attribute covers the sweep call site and findKAvx2 inlines into it
// (a cross-target indirect call per word would eat the SIMD win).
#define PREDBUS_STRIDE_SPAN_BODY(FINDK)                                \
    const std::size_t win = bufsize / 2;                               \
    const bool unit_lambda = lambda == 1.0;                            \
    std::size_t head = head_ref;                                       \
    std::size_t filled = filled_ref;                                   \
    u64 state = state_ref;                                             \
    Word last = last_ref;                                              \
    bool has_last = has_last_ref;                                      \
    OpCounts ops;                                                      \
    const auto push = [&](Word v) {                                    \
        if (head == 0) {                                               \
            std::copy(buf, buf + win, buf + win);                      \
            head = win;                                                \
        }                                                              \
        buf[--head] = v;                                               \
        if (filled < win)                                              \
            ++filled;                                                  \
        last = v;                                                      \
        has_last = true;                                               \
    };                                                                 \
    std::size_t i = 0;                                                 \
    while (i < n) {                                                    \
        const Word value = in[i];                                      \
        if (has_last && value == last) {                               \
            std::size_t run = 1;                                       \
            while (i + run < n && in[i + run] == value)                \
                ++run;                                                 \
            ops.cycles += run;                                         \
            ops.last_hits += run;                                      \
            std::fill(out + i, out + i + run, state);                  \
            if (run >= win) {                                          \
                std::fill(buf, buf + win, value);                      \
                head = 0;                                              \
                filled = win;                                          \
            } else {                                                   \
                for (std::size_t j = 0; j < run; ++j)                  \
                    push(value);                                       \
            }                                                          \
            i += run;                                                  \
            continue;                                                  \
        }                                                              \
        if (filled >= 2) {                                             \
            const Word h0 = buf[head];                                 \
            const Word h1 = buf[head + 1];                             \
            if (static_cast<Word>(h0 + h0 - h1) == value) {            \
                const Word s = static_cast<Word>(value - h0);          \
                std::size_t run = 1;                                   \
                while (i + run < n &&                                  \
                       static_cast<Word>(in[i + run] -                 \
                                         in[i + run - 1]) == s)        \
                    ++run;                                             \
                ops.cycles += run;                                     \
                ops.compares += run;                                   \
                ops.hits += run;                                       \
                const u64 s_odd = withCtl(                             \
                    (state ^ codeVector(0)) & kDataMask,               \
                    CtlState::Code);                                   \
                const u64 s_even = withCtl(                            \
                    (s_odd ^ codeVector(0)) & kDataMask,               \
                    CtlState::Code);                                   \
                for (std::size_t j = 0; j < run; ++j)                  \
                    out[i + j] = (j & 1) ? s_even : s_odd;             \
                state = out[i + run - 1];                              \
                const Word v_end = in[i + run - 1];                    \
                if (run >= win) {                                      \
                    for (std::size_t tpos = 0; tpos < win; ++tpos)     \
                        buf[tpos] = static_cast<Word>(                 \
                            v_end - static_cast<Word>(tpos) * s);      \
                    head = 0;                                          \
                    filled = win;                                      \
                    last = v_end;                                      \
                } else {                                               \
                    for (std::size_t j = 0; j < run; ++j)              \
                        push(in[i + j]);                               \
                }                                                      \
                i += run;                                              \
                continue;                                              \
            }                                                          \
        }                                                              \
        ++ops.cycles;                                                  \
        const unsigned k = FINDK(buf + head, filled, K, value);        \
        if (k != 0) {                                                  \
            ops.compares += k;                                         \
            ++ops.hits;                                                \
            state = withCtl((state ^ codeVector(k - 1)) & kDataMask,   \
                            CtlState::Code);                           \
        } else {                                                       \
            ops.compares += K;                                         \
            applyMiss(state, ops, value, lambda, unit_lambda);         \
        }                                                              \
        push(value);                                                   \
        out[i] = state;                                                \
        ++i;                                                           \
    }                                                                  \
    head_ref = head;                                                   \
    filled_ref = filled;                                               \
    state_ref = state;                                                 \
    last_ref = last;                                                   \
    has_last_ref = has_last;                                           \
    ops_out += ops;

void
strideSpanScalar(Word *buf, std::size_t bufsize, std::size_t &head_ref,
                 std::size_t &filled_ref, u64 &state_ref,
                 Word &last_ref, bool &has_last_ref, unsigned K,
                 const Word *in, u64 *out, std::size_t n,
                 OpCounts &ops_out, double lambda)
{
    PREDBUS_STRIDE_SPAN_BODY(findKScalar)
}

#if defined(__x86_64__)
__attribute__((target("avx2,popcnt"))) void
strideSpanAvx2(Word *buf, std::size_t bufsize, std::size_t &head_ref,
               std::size_t &filled_ref, u64 &state_ref, Word &last_ref,
               bool &has_last_ref, unsigned K, const Word *in,
               u64 *out, std::size_t n, OpCounts &ops_out,
               double lambda)
{
    PREDBUS_STRIDE_SPAN_BODY(findKAvx2)
}
#endif

#undef PREDBUS_STRIDE_SPAN_BODY

} // namespace

namespace detail
{

void
strideEncodeSpan(StrideTranscoder &t, const Word *in, u64 *out,
                 std::size_t n)
{
    auto &f = t.enc;
#if defined(__x86_64__)
    static const bool avx2 = useAvx2Kernels();
    if (avx2 && t.K == 8) {
        strideSpanAvx2(f.buf.data(), f.buf.size(), f.head, f.filled,
                       f.state, f.last, f.has_last, t.K, in, out, n,
                       t.op_counts, t.lambda);
        return;
    }
#endif
    strideSpanScalar(f.buf.data(), f.buf.size(), f.head, f.filled,
                     f.state, f.last, f.has_last, t.K, in, out, n,
                     t.op_counts, t.lambda);
}

} // namespace detail

StrideTranscoder::StrideTranscoder(unsigned num_strides, double lambda)
    : K(num_strides), lambda(lambda)
{
    if (K == 0 || K > kMaxCodePoints)
        fatal("stride count must be 1..", kMaxCodePoints);
    enc.buf.assign(4 * static_cast<std::size_t>(K), 0);
    enc.head = 2 * static_cast<std::size_t>(K);
    dec.buf.assign(4 * static_cast<std::size_t>(K), 0);
    dec.head = 2 * static_cast<std::size_t>(K);
}

std::string
StrideTranscoder::name() const
{
    return "stride" + std::to_string(K);
}

void
StrideTranscoder::Fsm::push(Word v)
{
    if (head == 0) {
        // Window hit the front of the buffer: relocate it to the top
        // half (the hardware shift register's shift, amortized to one
        // copy per win pushes).
        const std::size_t win = buf.size() / 2;
        std::copy(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(win),
                  buf.begin() + static_cast<std::ptrdiff_t>(win));
        head = win;
    }
    --head;
    buf[head] = v;
    if (filled < buf.size() / 2)
        ++filled;
    last = v;
    has_last = true;
}

bool
StrideTranscoder::Fsm::predict(unsigned k, Word &out) const
{
    if (filled < 2 * static_cast<std::size_t>(k))
        return false;
    const Word recent = at(k - 1);
    const Word older = at(2 * k - 1);
    out = recent + (recent - older);
    return true;
}

u64
StrideTranscoder::encode(Word value)
{
    ++op_counts.cycles;
    if (enc.has_last && value == enc.last) {
        ++op_counts.last_hits;
        enc.push(value);
        return enc.state;
    }
    bool coded = false;
    for (unsigned k = 1; k <= K; ++k) {
        Word pred;
        // Two subtractions and a comparison per stride (paper §4.4).
        ++op_counts.compares;
        if (enc.predict(k, pred) && pred == value) {
            ++op_counts.hits;
            enc.state = withCtl((enc.state ^ codeVector(k - 1)) &
                                    kDataMask,
                                CtlState::Code);
            coded = true;
            break;
        }
    }
    if (!coded) {
        ++op_counts.raw_sends;
        enc.state = chooseRawState(enc.state, value, lambda);
    }
    enc.push(value);
    return enc.state;
}

Word
StrideTranscoder::decode(u64 wire_state)
{
    const auto decoded = interpret(wire_state, dec.state);
    panicIf(!decoded, "stride: undecodable wire state");
    Word value = 0;
    using Kind = DecodedCodeword::Kind;
    switch (decoded->kind) {
      case Kind::LastValue:
        panicIf(!dec.has_last, "stride: LAST code with no history");
        value = dec.last;
        break;
      case Kind::Dictionary: {
        const unsigned k = decoded->index + 1;
        Word pred;
        panicIf(k > K || !dec.predict(k, pred),
                "stride: invalid stride code");
        value = pred;
        break;
      }
      case Kind::Raw:
      case Kind::RawInverted:
        value = decoded->raw;
        break;
    }
    dec.push(value);
    dec.state = wire_state;
    return value;
}

void
StrideTranscoder::encodeSpan(const Word *in, u64 *out, std::size_t n)
{
    detail::strideEncodeSpan(*this, in, out, n);
}

// Devirtualized batch loop: the qualified call inlines the per-word
// path, so the span costs one virtual dispatch total.
void
StrideTranscoder::decodeSpan(const u64 *in, Word *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = StrideTranscoder::decode(in[i]);
}

void
StrideTranscoder::resetState()
{
    enc = Fsm{};
    dec = Fsm{};
    enc.buf.assign(4 * static_cast<std::size_t>(K), 0);
    enc.head = 2 * static_cast<std::size_t>(K);
    dec.buf.assign(4 * static_cast<std::size_t>(K), 0);
    dec.head = 2 * static_cast<std::size_t>(K);
}

namespace
{

void
saveFsm(StateWriter &w, const std::vector<Word> &buf, u64 head,
        u64 filled, u64 state, Word last, bool has_last)
{
    w.writeU32(static_cast<u32>(buf.size()));
    for (const Word v : buf)
        w.writeU32(v);
    w.writeU64(head);
    w.writeU64(filled);
    w.writeU64(state);
    w.writeU32(last);
    w.writeBool(has_last);
}

} // namespace

void
StrideTranscoder::saveState(StateWriter &w) const
{
    w.writeU32(K);
    for (const Fsm *f : {&enc, &dec})
        saveFsm(w, f->buf, f->head, f->filled, f->state, f->last,
                f->has_last);
}

void
StrideTranscoder::loadState(StateReader &r)
{
    if (r.readU32() != K) {
        r.markFailed();
        return;
    }
    for (Fsm *f : {&enc, &dec}) {
        if (r.readU32() != f->buf.size()) {
            r.markFailed();
            return;
        }
        for (Word &v : f->buf)
            v = r.readU32();
        const u64 head = r.readU64();
        const u64 filled = r.readU64();
        // The window buf[head..head+2K) must fit inside the doubled
        // buffer and history never exceeds 2K values.
        if (head > 2 * static_cast<u64>(K) ||
            filled > 2 * static_cast<u64>(K)) {
            r.markFailed();
            return;
        }
        f->head = head;
        f->filled = filled;
        f->state = r.readU64();
        f->last = r.readU32();
        f->has_last = r.readBool();
    }
}

} // namespace predbus::coding
