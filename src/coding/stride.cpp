#include "coding/stride.h"

#include "common/log.h"

namespace predbus::coding
{

StrideTranscoder::StrideTranscoder(unsigned num_strides, double lambda)
    : K(num_strides), lambda(lambda)
{
    if (K == 0 || K > kMaxCodePoints)
        fatal("stride count must be 1..", kMaxCodePoints);
    enc.history.assign(2 * K, 0);
    dec.history.assign(2 * K, 0);
}

std::string
StrideTranscoder::name() const
{
    return "stride" + std::to_string(K);
}

void
StrideTranscoder::Fsm::push(Word v)
{
    head = head == 0 ? history.size() - 1 : head - 1;
    history[head] = v;
    if (filled < history.size())
        ++filled;
    last = v;
    has_last = true;
}

bool
StrideTranscoder::Fsm::predict(unsigned k, Word &out) const
{
    if (filled < 2 * k)
        return false;
    const Word recent = at(k - 1);
    const Word older = at(2 * k - 1);
    out = recent + (recent - older);
    return true;
}

u64
StrideTranscoder::encode(Word value)
{
    ++op_counts.cycles;
    if (enc.has_last && value == enc.last) {
        ++op_counts.last_hits;
        enc.push(value);
        return enc.state;
    }
    bool coded = false;
    for (unsigned k = 1; k <= K; ++k) {
        Word pred;
        // Two subtractions and a comparison per stride (paper §4.4).
        ++op_counts.compares;
        if (enc.predict(k, pred) && pred == value) {
            ++op_counts.hits;
            enc.state = withCtl((enc.state ^ codeVector(k - 1)) &
                                    kDataMask,
                                CtlState::Code);
            coded = true;
            break;
        }
    }
    if (!coded) {
        ++op_counts.raw_sends;
        enc.state = chooseRawState(enc.state, value, lambda);
    }
    enc.push(value);
    return enc.state;
}

Word
StrideTranscoder::decode(u64 wire_state)
{
    const auto decoded = interpret(wire_state, dec.state);
    panicIf(!decoded, "stride: undecodable wire state");
    Word value = 0;
    using Kind = DecodedCodeword::Kind;
    switch (decoded->kind) {
      case Kind::LastValue:
        panicIf(!dec.has_last, "stride: LAST code with no history");
        value = dec.last;
        break;
      case Kind::Dictionary: {
        const unsigned k = decoded->index + 1;
        Word pred;
        panicIf(k > K || !dec.predict(k, pred),
                "stride: invalid stride code");
        value = pred;
        break;
      }
      case Kind::Raw:
      case Kind::RawInverted:
        value = decoded->raw;
        break;
    }
    dec.push(value);
    dec.state = wire_state;
    return value;
}

// Devirtualized batch loops: qualified calls inline the per-word
// paths, so the span costs one virtual dispatch total.
void
StrideTranscoder::encodeSpan(const Word *in, u64 *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = StrideTranscoder::encode(in[i]);
}

void
StrideTranscoder::decodeSpan(const u64 *in, Word *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = StrideTranscoder::decode(in[i]);
}

void
StrideTranscoder::resetState()
{
    enc = Fsm{};
    dec = Fsm{};
    enc.history.assign(2 * K, 0);
    dec.history.assign(2 * K, 0);
}

} // namespace predbus::coding
