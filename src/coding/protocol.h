/**
 * @file
 * Shared wire-protocol helpers for predictive transcoders: low-weight
 * code vectors sorted by energy cost (paper §1.2), control-wire
 * signalling, and the raw / raw-inverted choice.
 *
 * Protocol (paper Fig 2): the coded bus carries W_B data wires plus
 * two control wires whose *state* selects the interpretation of the
 * data wires —
 *   Code   (00): the data wires are transition-coded; the XOR against
 *                the previous data state is the code word (all-zero =
 *                LAST value, low-weight vector = dictionary index);
 *   Raw    (01): the data wires carry the value itself;
 *   RawInv (10): the data wires carry the inverted value.
 * Absolute control states (rather than transition-signalled ones)
 * make runs of raw words cost exactly what the unencoded bus would:
 * only the first raw word of a run flips a control wire.
 */

#ifndef PREDBUS_CODING_PROTOCOL_H
#define PREDBUS_CODING_PROTOCOL_H

#include <optional>

#include "coding/codec.h"
#include "common/bitops.h"

namespace predbus::coding
{

/** Control wires sit above the 32 data wires. */
constexpr unsigned kCodedWidth = kDataWidth + 2;
constexpr u64 kDataMask = maskLow(kDataWidth);
constexpr u64 kCtlMask = u64{3} << kDataWidth;

/** Interpretation selected by the control wires. */
enum class CtlState : unsigned
{
    Code = 0,
    Raw = 1,
    RawInv = 2,
};

constexpr u64
withCtl(u64 data, CtlState ctl)
{
    return (data & kDataMask) |
           (u64{static_cast<unsigned>(ctl)} << kDataWidth);
}

constexpr CtlState
ctlOf(u64 state)
{
    return static_cast<CtlState>((state >> kDataWidth) & 3);
}

/**
 * Dictionary code vectors sorted by increasing Hamming weight:
 * indices 0..31 are one-hot, 32..62 two-hot (adjacent pairs),
 * 63..92 three-hot runs. 93 code points total.
 */
constexpr unsigned kMaxCodePoints = 93;

constexpr u64
codeVector(unsigned index)
{
    if (index < 32)
        return u64{1} << index;
    if (index < 63)
        return u64{3} << (index - 32);
    return u64{7} << (index - 63);
}

/** Inverse of codeVector; nullopt for unassigned patterns. */
constexpr std::optional<unsigned>
codeIndex(u64 vector)
{
    if (vector == 0 || (vector >> kDataWidth) != 0)
        return std::nullopt;
    const int weight = popcount(vector);
    const int low = std::countr_zero(vector);
    switch (weight) {
      case 1:
        return static_cast<unsigned>(low);
      case 2:
        if (vector == (u64{3} << low) && low < 31)
            return static_cast<unsigned>(32 + low);
        return std::nullopt;
      case 3:
        if (vector == (u64{7} << low) && low < 30)
            return static_cast<unsigned>(63 + low);
        return std::nullopt;
      default:
        return std::nullopt;
    }
}

/** Relative transition cost between two wire states (Eq. 1 shape). */
inline double
transitionCost(u64 from, u64 to, unsigned n_wires, double lambda)
{
    const double tau = hammingDistance(from, to);
    const double kappa = couplingEvents(from, to, n_wires);
    return tau + lambda * kappa;
}

/**
 * Pick raw vs raw-inverted for @p value against wire state @p cur
 * (Fig 2): candidate states are (value, Raw) and (~value, RawInv);
 * return the cheaper at coupling ratio @p lambda.
 */
inline u64
chooseRawState(u64 cur, Word value, double lambda)
{
    const u64 cand_raw = withCtl(value, CtlState::Raw);
    const u64 cand_inv =
        withCtl(~u64{value} & kDataMask, CtlState::RawInv);
    const double cost_raw =
        transitionCost(cur, cand_raw, kCodedWidth, lambda);
    const double cost_inv =
        transitionCost(cur, cand_inv, kCodedWidth, lambda);
    return (cost_raw <= cost_inv) ? cand_raw : cand_inv;
}

/** Interpretation of one received wire state. */
struct DecodedCodeword
{
    enum class Kind { LastValue, Dictionary, Raw, RawInverted } kind;
    unsigned index = 0;   ///< dictionary index (Kind::Dictionary)
    Word raw = 0;         ///< payload (Raw / RawInverted)
};

/**
 * Interpret the wire state @p state given the previous state
 * @p prev_state. nullopt for illegal combinations (control state 11
 * or a non-code transition vector under Code).
 */
std::optional<DecodedCodeword> interpret(u64 state, u64 prev_state);

} // namespace predbus::coding

#endif // PREDBUS_CODING_PROTOCOL_H
