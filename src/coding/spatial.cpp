#include "coding/spatial.h"

#include <set>

#include "coding/snapshot.h"
#include "common/log.h"

namespace predbus::coding
{

SpatialCoder::SpatialCoder(unsigned input_bits) : in_bits(input_bits)
{
    if (input_bits == 0 || input_bits > 20)
        fatal("spatial coder supports 1..20 input bits");
}

std::string
SpatialCoder::name() const
{
    return "spatial" + std::to_string(in_bits);
}

u64
SpatialCoder::encode(Word value)
{
    ++op_counts.cycles;
    panicIf(value >= (u32{1} << in_bits),
            "spatial: value exceeds input width");
    if (enc_first) {
        enc_first = false;
        enc_cur = value;
        return value;
    }
    if (value != enc_cur) {
        // One wire falls, one rises.
        count.tau += 2;

        // Coupling: adjacent pairs (p, p+1) for p in [0, W-2] whose
        // relative state changed. A one-hot at position x contributes
        // relative-state bits {x-1, x}; the symmetric difference of
        // the old and new contributions is what flips.
        const unsigned w = width();
        const s64 a = enc_cur, b = value;
        std::set<s64> changed;
        for (s64 p : {a - 1, a, b - 1, b}) {
            if (p < 0 || p > static_cast<s64>(w) - 2)
                continue;
            if (changed.count(p))
                changed.erase(p);  // appears twice: cancels
            else
                changed.insert(p);
        }
        count.kappa += changed.size();
        enc_cur = value;
    }
    ++op_counts.hits;
    return value;
}

Word
SpatialCoder::decode(u64 wire_state)
{
    return static_cast<Word>(wire_state);
}

void
SpatialCoder::resetState()
{
    count = EnergyCount{};
    enc_cur = 0;
    enc_first = true;
}

void
SpatialCoder::saveState(StateWriter &w) const
{
    w.writeU32(in_bits);
    saveEnergyCount(w, count);
    w.writeU32(enc_cur);
    w.writeBool(enc_first);
}

void
SpatialCoder::loadState(StateReader &r)
{
    if (r.readU32() != in_bits) {
        r.markFailed();
        return;
    }
    loadEnergyCount(r, count);
    enc_cur = r.readU32();
    enc_first = r.readBool();
}

} // namespace predbus::coding
