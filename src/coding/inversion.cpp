#include "coding/inversion.h"

#include <bit>

#include "coding/protocol.h"
#include "coding/snapshot.h"
#include "common/log.h"

namespace predbus::coding
{

const std::vector<Word> &
inversionPatterns()
{
    // Ordered so prefixes are sensible pattern sets: identity and full
    // inversion first (classic bus-invert), then half-word, byte,
    // nibble, and bit-interleaved granularities.
    static const std::vector<Word> patterns = [] {
        std::vector<Word> p = {
            0x00000000u, 0xffffffffu, 0xffff0000u, 0x0000ffffu,
            0xff00ff00u, 0x00ff00ffu, 0xf0f0f0f0u, 0x0f0f0f0fu,
            0xccccccccu, 0x33333333u, 0xaaaaaaaau, 0x55555555u,
            0xff000000u, 0x00ff0000u, 0x0000ff00u, 0x000000ffu,
            0xffffff00u, 0xffff00ffu, 0xff00ffffu, 0x00ffffffu,
            0xf000f000u, 0x0f000f00u, 0x00f000f0u, 0x000f000fu,
            0xc0c0c0c0u, 0x30303030u, 0x0c0c0c0cu, 0x03030303u,
            0xe0e0e0e0u, 0x07070707u, 0x70707070u, 0x0e0e0e0eu,
        };
        // Extend deterministically to 64 with golden-ratio hashes.
        u32 x = 0x9e3779b9u;
        while (p.size() < 64) {
            p.push_back(x);
            x = x * 0x85ebca6bu + 0xc2b2ae35u;
        }
        return p;
    }();
    return patterns;
}

InversionCoder::InversionCoder(unsigned num_patterns,
                               double assumed_lambda)
    : assumed_lambda(assumed_lambda)
{
    if (num_patterns < 2 || num_patterns > 64 ||
        !std::has_single_bit(num_patterns))
        fatal("inversion coder needs a power-of-two pattern count in "
              "[2, 64]");
    const auto &all = inversionPatterns();
    patterns.assign(all.begin(), all.begin() + num_patterns);
    signal_bits =
        static_cast<unsigned>(std::countr_zero(num_patterns));
    total_width = kDataWidth + signal_bits;
}

std::string
InversionCoder::name() const
{
    return "inv" + std::to_string(patterns.size());
}

u64
InversionCoder::encode(Word value)
{
    ++op_counts.cycles;
    u64 best_state = 0;
    double best_cost = 0.0;
    for (std::size_t j = 0; j < patterns.size(); ++j) {
        const u64 data = u64{value ^ patterns[j]};
        const u64 cand = data | (u64{j} << kDataWidth);
        const double cost =
            transitionCost(enc_state, cand, total_width,
                           assumed_lambda);
        if (j == 0 || cost < best_cost) {
            best_cost = cost;
            best_state = cand;
        }
    }
    // Each candidate costs a transition-vector XOR + weight count.
    op_counts.compares += patterns.size();
    ++op_counts.raw_sends;
    enc_state = best_state;
    return best_state;
}

Word
InversionCoder::decode(u64 wire_state)
{
    const u64 index = wire_state >> kDataWidth;
    panicIf(index >= patterns.size(), "inversion: bad pattern index");
    dec_state = wire_state;
    return static_cast<Word>(wire_state & kDataMask) ^
           patterns[static_cast<std::size_t>(index)];
}

// Batch loops keep the wire state and pattern table pointer in
// registers across the span; the pattern-selection arithmetic is the
// same double-precision comparison as encode(), so the chosen states
// are identical.
void
InversionCoder::encodeSpan(const Word *in, u64 *out, std::size_t n)
{
    u64 state = enc_state;
    const Word *pat = patterns.data();
    const std::size_t n_pat = patterns.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Word value = in[i];
        u64 best_state = 0;
        double best_cost = 0.0;
        for (std::size_t j = 0; j < n_pat; ++j) {
            const u64 data = u64{value ^ pat[j]};
            const u64 cand = data | (u64{j} << kDataWidth);
            const double cost = transitionCost(state, cand, total_width,
                                               assumed_lambda);
            if (j == 0 || cost < best_cost) {
                best_cost = cost;
                best_state = cand;
            }
        }
        state = best_state;
        out[i] = best_state;
    }
    op_counts.cycles += n;
    op_counts.compares += n * n_pat;
    op_counts.raw_sends += n;
    enc_state = state;
}

void
InversionCoder::decodeSpan(const u64 *in, Word *out, std::size_t n)
{
    const Word *pat = patterns.data();
    const std::size_t n_pat = patterns.size();
    for (std::size_t i = 0; i < n; ++i) {
        const u64 wire_state = in[i];
        const u64 index = wire_state >> kDataWidth;
        panicIf(index >= n_pat, "inversion: bad pattern index");
        out[i] = static_cast<Word>(wire_state & kDataMask) ^
                 pat[static_cast<std::size_t>(index)];
    }
    if (n)
        dec_state = in[n - 1];
}

void
InversionCoder::resetState()
{
    enc_state = 0;
    dec_state = 0;
}

void
InversionCoder::saveState(StateWriter &w) const
{
    w.writeU64(enc_state);
    w.writeU64(dec_state);
}

void
InversionCoder::loadState(StateReader &r)
{
    enc_state = r.readU64();
    dec_state = r.readU64();
}

} // namespace predbus::coding
