/**
 * @file
 * Partial bus-invert coding (paper §2, ref [20] Shin/Chae/Choi).
 *
 * The bus is split into @p groups contiguous groups; each group
 * carries its own invert wire and decides inversion independently, so
 * a localized burst of transitions can be inverted without disturbing
 * quiet groups. groups=1 degenerates to classic bus-invert [23].
 * Implemented as a related-work baseline for comparison benches.
 */

#ifndef PREDBUS_CODING_PARTIAL_INVERT_H
#define PREDBUS_CODING_PARTIAL_INVERT_H

#include <vector>

#include "coding/codec.h"

namespace predbus::coding
{

class PartialBusInvert : public Transcoder
{
  public:
    /** @p groups must divide 32; @p assumed_lambda drives selection. */
    PartialBusInvert(unsigned groups, double assumed_lambda);

    std::string name() const override;
    unsigned width() const override { return kDataWidth + n_groups; }
    u64 encode(Word value) override;
    Word decode(u64 wire_state) override;
    void encodeSpan(const Word *in, u64 *out, std::size_t n) override;
    void decodeSpan(const u64 *in, Word *out, std::size_t n) override;

  protected:
    void resetState() override;
    void saveState(StateWriter &w) const override;
    void loadState(StateReader &r) override;

  private:
    double transitionCostBits(u64 candidate, unsigned span,
                              unsigned group,
                              bool invert_wire_set) const;

    unsigned n_groups;
    unsigned group_bits;
    double assumed_lambda;
    u64 enc_state = 0;
    u64 dec_state = 0;
};

} // namespace predbus::coding

#endif // PREDBUS_CODING_PARTIAL_INVERT_H
