/**
 * @file
 * The bus transcoder interface (paper Figs 1-2).
 *
 * A transcoder is a pair of synchronized FSMs at either end of a bus.
 * In this library one Transcoder object holds *both* FSMs: encode()
 * advances the encoder with the next value to transmit and returns the
 * resulting bus wire state; decode() advances the decoder with that
 * wire state and returns the recovered value. Keeping both in one
 * object makes round-trip property testing trivial while preserving
 * the hardware split (the two FSMs share no state).
 *
 * Wire protocol for predictive transcoders (paper Fig 2): W_B = 32
 * data wires plus 2 transition-signalled control wires. Each word is a
 * code word XORed onto the previous wire state (transition coding,
 * Fig 1):
 *  - no control flip   -> dictionary code; all-zero data flips mean
 *                         "same as last value" (code 0), a one-hot
 *                         (or low-weight) data flip names a dictionary
 *                         index;
 *  - control wire 0    -> raw: the data field of the code word is the
 *                         value itself;
 *  - control wire 1    -> raw inverted: data field is ~value.
 */

#ifndef PREDBUS_CODING_CODEC_H
#define PREDBUS_CODING_CODEC_H

#include <cstddef>
#include <string>

#include "common/types.h"

namespace predbus::obs
{
class Counter;
class Registry;
}

namespace predbus::coding
{

class StateWriter;
class StateReader;

/** Data bus width in bits (the paper studies 32-bit buses). */
constexpr unsigned kDataWidth = 32;

/**
 * Hardware operation counts accumulated by the *encoder* FSM; the
 * circuit model (src/circuit) converts these into energy (paper
 * Fig 28 / §5.3.2).
 */
struct OpCounts
{
    u64 cycles = 0;        ///< words processed
    u64 matches = 0;       ///< CAM probe operations (selective precharge)
    u64 shifts = 0;        ///< shift-register insertions
    u64 counter_incs = 0;  ///< Johnson counter increments
    u64 compares = 0;      ///< counter equality comparisons
    u64 swaps = 0;         ///< adjacent entry swaps (sorting)
    u64 divisions = 0;     ///< whole-table counter halving events
    u64 raw_sends = 0;     ///< words sent unencoded (raw / raw-inverted)
    u64 hits = 0;          ///< dictionary or predictor hits
    u64 last_hits = 0;     ///< repeats coded as code 0

    OpCounts &
    operator+=(const OpCounts &o)
    {
        cycles += o.cycles;
        matches += o.matches;
        shifts += o.shifts;
        counter_incs += o.counter_incs;
        compares += o.compares;
        swaps += o.swaps;
        divisions += o.divisions;
        raw_sends += o.raw_sends;
        hits += o.hits;
        last_hits += o.last_hits;
        return *this;
    }

    friend bool operator==(const OpCounts &, const OpCounts &) =
        default;
};

/** Counted wire events over a run (paper Eqs. 2-3). */
struct EnergyCount
{
    u64 tau = 0;    ///< self transitions
    u64 kappa = 0;  ///< coupling events

    /** Relative cost at coupling ratio @p lambda (paper Eq. 1). */
    double
    cost(double lambda) const
    {
        return static_cast<double>(tau) +
               lambda * static_cast<double>(kappa);
    }

    EnergyCount &
    operator+=(const EnergyCount &other)
    {
        tau += other.tau;
        kappa += other.kappa;
        return *this;
    }
};

/** Abstract transcoder (encoder + decoder FSM pair). */
class Transcoder
{
  public:
    virtual ~Transcoder() = default;

    /** Scheme name for tables, e.g. "window8". */
    virtual std::string name() const = 0;

    /** Total wire count of the coded bus (data + control/signal). */
    virtual unsigned width() const = 0;

    /** Advance the encoder; returns the new bus wire state. */
    virtual u64 encode(Word value) = 0;

    /** Advance the decoder with a wire state; returns the value. */
    virtual Word decode(u64 wire_state) = 0;

    /**
     * Batch encode: out[i] is exactly what encode(in[i]) would have
     * returned word by word — wire states, operation counts, and FSM
     * evolution are byte-identical to the per-word path. The base
     * implementation is a scalar loop over encode(); the hot codec
     * families override it with tight batch loops (state cached in
     * locals, no per-word virtual dispatch, SIMD dictionary probes
     * where available). @p in and @p out must not alias and must hold
     * @p n elements.
     */
    virtual void encodeSpan(const Word *in, u64 *out, std::size_t n);

    /** Batch decode; same equivalence contract as encodeSpan(). */
    virtual void decodeSpan(const u64 *in, Word *out, std::size_t n);

    /**
     * Reset both FSMs and the operation counters, and re-baseline the
     * stats sink: a reused transcoder's next flushStats() publishes
     * only ops performed after the reset (never a stale delta).
     * Non-virtual on purpose — codecs reset their FSM state in
     * resetState() and can't forget the counter/baseline part.
     */
    void reset();

    /**
     * Spatial-style coders with more than 64 wires meter their own
     * energy instead of exposing wire states.
     */
    virtual bool metersInternally() const { return false; }
    virtual EnergyCount internalCount() const { return {}; }

    const OpCounts &ops() const { return op_counts; }

    /**
     * Optional metrics sink: once attached, flushStats() publishes
     * operation-count deltas as coding.<prefix>.* counters
     * (dict_hits, dict_evictions, last_hits, raw_sends, cam_probes,
     * ...) in @p registry. @p prefix is sanitized into one metric
     * segment (typically name()). The encode/decode hot path is
     * untouched — publication happens only at flush, so an attached
     * sink costs a handful of relaxed atomic adds per evaluated
     * trace.
     */
    void setStatsSink(obs::Registry &registry,
                      const std::string &prefix);

    bool hasStatsSink() const { return stats.attached; }

    /** Mark the current op counters as already published. reset()
     * re-baselines automatically; this remains for callers that
     * adopt a transcoder mid-run without resetting it. */
    void syncStatsBaseline() { published = op_counts; }

    /** Publish op-count deltas since the last flush (no-op without a
     * sink). */
    void flushStats();

    /**
     * Serialize the complete codec state — operation counters, the
     * stats-publish baseline, and both FSM ends via saveState() — in
     * the coding/snapshot.h format. Non-virtual on purpose (mirrors
     * reset()/resetState()): families serialize their FSMs and can't
     * forget the counter/baseline part. The metrics sink attachment
     * is runtime wiring, not state, and is not serialized.
     */
    void save(StateWriter &w) const;

    /** Inverse of save(); the reader's sticky failure flag reports
     * truncation or semantic mismatches (wrong family/config). */
    void load(StateReader &r);

  protected:
    /** Reset the codec's FSM state (both ends). The public reset()
     * clears op_counts and the publish baseline afterwards. */
    virtual void resetState() = 0;

    /** Serialize / restore the family's FSM state (both ends). The
     * defaults are for stateless codecs (the raw bus); every stateful
     * family overrides both. */
    virtual void saveState(StateWriter &) const {}
    virtual void loadState(StateReader &) {}

    OpCounts op_counts;

  private:
    /** Counters resolved once at attach; pointers stay valid for the
     * registry's lifetime. */
    struct StatsSink
    {
        bool attached = false;
        obs::Counter *cycles = nullptr;
        obs::Counter *dict_hits = nullptr;
        obs::Counter *last_hits = nullptr;
        obs::Counter *raw_sends = nullptr;
        obs::Counter *dict_evictions = nullptr;
        obs::Counter *cam_probes = nullptr;
        obs::Counter *counter_incs = nullptr;
        obs::Counter *compares = nullptr;
        obs::Counter *swaps = nullptr;
        obs::Counter *divisions = nullptr;
    };

    StatsSink stats;
    OpCounts published;
};

} // namespace predbus::coding

#endif // PREDBUS_CODING_CODEC_H
