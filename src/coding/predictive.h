/**
 * @file
 * Generic predictive transcoder (paper Fig 2): a dictionary policy
 * plugged into the common wire protocol, with LAST-value repeats
 * costing zero transitions and raw / raw-inverted fallback.
 *
 * The Dict policy must provide:
 *   struct-like LookupResult { bool hit; unsigned index; }
 *   LookupResult access(Word v, OpCounts *ops);  // probe then update
 *   Word valueAt(unsigned index) const;          // pre-access content
 *   void reset();
 * access() must return the *pre-update* index, because the decoder
 * reads valueAt() before advancing its own copy of the dictionary.
 */

#ifndef PREDBUS_CODING_PREDICTIVE_H
#define PREDBUS_CODING_PREDICTIVE_H

#include <string>
#include <utility>

#include "coding/protocol.h"
#include "coding/snapshot.h"
#include "common/log.h"

namespace predbus::coding
{

/** Result of a dictionary probe. */
struct LookupResult
{
    bool hit = false;
    unsigned index = 0;
};

template <typename Dict>
class PredictiveTranscoder : public Transcoder
{
  public:
    /**
     * @p cost_aware: let the encoder compare the dictionary-code and
     * raw candidate states and send the cheaper one even on a hit.
     * The decoder is unaffected (it interprets whatever arrives), so
     * this is a pure encoder-side policy — an extension beyond the
     * paper, quantified by bench/ablation_costaware.
     */
    PredictiveTranscoder(std::string scheme_name, Dict dictionary,
                         double lambda = 1.0, bool cost_aware = false)
        : scheme(std::move(scheme_name)), enc_dict(dictionary),
          dec_dict(dictionary), lambda(lambda), cost_aware(cost_aware)
    {
    }

    std::string name() const override { return scheme; }
    unsigned width() const override { return kCodedWidth; }

    u64
    encode(Word value) override
    {
        ++op_counts.cycles;
        const bool is_repeat = enc_has_last && value == enc_last;
        const LookupResult res = enc_dict.access(value, &op_counts);
        if (is_repeat) {
            // LAST-value prediction: the wire state (data and control)
            // is left exactly as-is — zero transitions.
            ++op_counts.last_hits;
        } else if (res.hit && res.index < kMaxCodePoints) {
            const u64 code_state =
                withCtl((enc_state ^ codeVector(res.index)) & kDataMask,
                        CtlState::Code);
            if (cost_aware) {
                const u64 raw_state =
                    chooseRawState(enc_state, value, lambda);
                const double code_cost = transitionCost(
                    enc_state, code_state, kCodedWidth, lambda);
                const double raw_cost = transitionCost(
                    enc_state, raw_state, kCodedWidth, lambda);
                if (raw_cost < code_cost) {
                    ++op_counts.raw_sends;
                    enc_state = raw_state;
                } else {
                    ++op_counts.hits;
                    enc_state = code_state;
                }
            } else {
                ++op_counts.hits;
                enc_state = code_state;
            }
        } else {
            ++op_counts.raw_sends;
            enc_state = chooseRawState(enc_state, value, lambda);
        }
        enc_last = value;
        enc_has_last = true;
        return enc_state;
    }

    Word
    decode(u64 wire_state) override
    {
        const auto decoded = interpret(wire_state, dec_state);
        panicIf(!decoded, scheme, ": undecodable wire state");
        Word value = 0;
        using Kind = DecodedCodeword::Kind;
        switch (decoded->kind) {
          case Kind::LastValue:
            panicIf(!dec_has_last, scheme, ": LAST code with no history");
            value = dec_last;
            break;
          case Kind::Dictionary:
            value = dec_dict.valueAt(decoded->index);
            break;
          case Kind::Raw:
          case Kind::RawInverted:
            value = decoded->raw;
            break;
        }
        dec_dict.access(value, nullptr);
        dec_state = wire_state;
        dec_last = value;
        dec_has_last = true;
        return value;
    }

    /**
     * Batch encoder: the same per-word algorithm with the FSM scalars
     * (wire state, LAST value) held in locals for the whole span, the
     * dictionary probe inlined (no virtual dispatch per word), and op
     * counts accumulated locally and folded in once. Byte-identical
     * to encode() word by word.
     */
    void
    encodeSpan(const Word *in, u64 *out, std::size_t n) override
    {
        u64 state = enc_state;
        Word last = enc_last;
        bool has_last = enc_has_last;
        OpCounts ops;
        for (std::size_t i = 0; i < n; ++i) {
            const Word value = in[i];
            ++ops.cycles;
            const bool is_repeat = has_last && value == last;
            const LookupResult res = enc_dict.access(value, &ops);
            if (is_repeat) {
                ++ops.last_hits;
            } else if (res.hit && res.index < kMaxCodePoints) {
                const u64 code_state =
                    withCtl((state ^ codeVector(res.index)) & kDataMask,
                            CtlState::Code);
                if (cost_aware) {
                    const u64 raw_state =
                        chooseRawState(state, value, lambda);
                    const double code_cost = transitionCost(
                        state, code_state, kCodedWidth, lambda);
                    const double raw_cost = transitionCost(
                        state, raw_state, kCodedWidth, lambda);
                    if (raw_cost < code_cost) {
                        ++ops.raw_sends;
                        state = raw_state;
                    } else {
                        ++ops.hits;
                        state = code_state;
                    }
                } else {
                    ++ops.hits;
                    state = code_state;
                }
            } else {
                ++ops.raw_sends;
                state = chooseRawState(state, value, lambda);
            }
            last = value;
            has_last = true;
            out[i] = state;
        }
        enc_state = state;
        enc_last = last;
        enc_has_last = has_last;
        op_counts += ops;
    }

    void
    decodeSpan(const u64 *in, Word *out, std::size_t n) override
    {
        u64 state = dec_state;
        Word last = dec_last;
        bool has_last = dec_has_last;
        using Kind = DecodedCodeword::Kind;
        for (std::size_t i = 0; i < n; ++i) {
            const u64 wire_state = in[i];
            const auto decoded = interpret(wire_state, state);
            panicIf(!decoded, scheme, ": undecodable wire state");
            Word value = 0;
            switch (decoded->kind) {
              case Kind::LastValue:
                panicIf(!has_last, scheme,
                        ": LAST code with no history");
                value = last;
                break;
              case Kind::Dictionary:
                value = dec_dict.valueAt(decoded->index);
                break;
              case Kind::Raw:
              case Kind::RawInverted:
                value = decoded->raw;
                break;
            }
            dec_dict.access(value, nullptr);
            state = wire_state;
            last = value;
            has_last = true;
            out[i] = value;
        }
        dec_state = state;
        dec_last = last;
        dec_has_last = has_last;
    }

    /** Dictionary access for tests/telemetry (encoder side). */
    const Dict &dictionary() const { return enc_dict; }

  protected:
    void
    resetState() override
    {
        enc_dict.reset();
        dec_dict.reset();
        enc_state = dec_state = 0;
        enc_has_last = dec_has_last = false;
        enc_last = dec_last = 0;
    }

    void
    saveState(StateWriter &w) const override
    {
        enc_dict.save(w);
        dec_dict.save(w);
        w.writeU64(enc_state);
        w.writeU64(dec_state);
        w.writeU32(enc_last);
        w.writeU32(dec_last);
        w.writeBool(enc_has_last);
        w.writeBool(dec_has_last);
    }

    void
    loadState(StateReader &r) override
    {
        enc_dict.load(r);
        dec_dict.load(r);
        enc_state = r.readU64();
        dec_state = r.readU64();
        enc_last = r.readU32();
        dec_last = r.readU32();
        enc_has_last = r.readBool();
        dec_has_last = r.readBool();
    }

  private:
    std::string scheme;
    Dict enc_dict;
    Dict dec_dict;
    double lambda;
    bool cost_aware;
    u64 enc_state = 0;
    u64 dec_state = 0;
    Word enc_last = 0;
    Word dec_last = 0;
    bool enc_has_last = false;
    bool dec_has_last = false;
};

} // namespace predbus::coding

#endif // PREDBUS_CODING_PREDICTIVE_H
