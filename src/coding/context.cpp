#include "coding/context.h"

#include <algorithm>
#include <cmath>

#include "coding/span_kernel.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace predbus::coding
{

namespace
{

using detail::applyHit;
using detail::applyMiss;

// ---------------------------------------------------------------
// 64-bit key probe over a dense prefix, runtime-dispatched like the
// window CAM probe (value keys and (prev,current) transition keys are
// both one u64 lane).

using Probe64Fn = int (*)(const u64 *, unsigned, u64);

int
probeKeysScalar(const u64 *keys, unsigned count, u64 key)
{
    for (unsigned i = 0; i < count; ++i)
        if (keys[i] == key)
            return static_cast<int>(i);
    return -1;
}

#if defined(__x86_64__)
// Key arrays are padded to whole 4-lane blocks, so the unaligned
// loads never run past the allocation; lanes at or beyond `count`
// are masked out of the match bitmap (they hold padding zeros or
// stale evicted keys, either of which could alias a live probe).
// Resident keys are unique (Invariant 1), so any-match order equals
// first-match.
__attribute__((target("avx2"))) int
probeKeysAvx2(const u64 *keys, unsigned count, u64 key)
{
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(key));
    for (unsigned b = 0; b < count; b += 4) {
        const __m256i block = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + b));
        unsigned mask = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(block, needle))));
        const unsigned remain = count - b;
        if (remain < 4)
            mask &= (1u << remain) - 1u;
        if (mask)
            return static_cast<int>(b + __builtin_ctz(mask));
    }
    return -1;
}
#endif

Probe64Fn
pickProbe64()
{
#if defined(__x86_64__)
    if (detail::useAvx2Kernels())
        return probeKeysAvx2;
#endif
    return probeKeysScalar;
}

const Probe64Fn g_probe64 = pickProbe64();

// ---------------------------------------------------------------
// Pending-bit mask helpers (two u64 words cover every legal table
// size; table_size + sr_size <= kMaxCodePoints == 93).

inline bool
maskTest(const u64 *w, unsigned p)
{
    return (w[p >> 6] >> (p & 63)) & 1u;
}

inline void
maskSet(u64 *w, unsigned p)
{
    w[p >> 6] |= u64{1} << (p & 63);
}

inline void
maskClear(u64 *w, unsigned p)
{
    w[p >> 6] &= ~(u64{1} << (p & 63));
}

inline void
maskAssign(u64 *w, unsigned p, bool v)
{
    if (v)
        maskSet(w, p);
    else
        maskClear(w, p);
}

/** Lowest set bit at position >= @p from, or -1 if none. */
inline int
maskNext(const u64 *w, unsigned from)
{
    for (unsigned wi = from >> 6; wi < 2; ++wi) {
        u64 word = w[wi];
        if (wi == (from >> 6))
            word &= ~u64{0} << (from & 63);
        if (word)
            return static_cast<int>(wi * 64 +
                                    static_cast<unsigned>(
                                        __builtin_ctzll(word)));
    }
    return -1;
}

// ---------------------------------------------------------------
// Raw-array view of a ContextDict for the fused kernels (the kernels
// live in this anonymous namespace and are not friends; the friend
// entry point contextEncodeSpan() unpacks the dictionary once).

struct CtxView
{
    u64 *tab_keys;
    u32 *tab_counts;
    u64 *pend;
    u64 *sr_keys;
    u32 *sr_counts;
    unsigned tsize;
    unsigned ssize;
    u32 divide_period;
};

/** Miss path shared by access() and the span kernels: shift @p key
 * into the SR; the displaced entry may be promoted into the table if
 * it earned more counts than the table floor (clamped to keep
 * Invariant 2). */
inline void
missInsertView(const CtxView &v, unsigned &valid_count,
               unsigned &sr_head, unsigned &sr_filled, u64 key,
               OpCounts &ops)
{
    if (sr_head < sr_filled) {
        const u64 okey = v.sr_keys[sr_head];
        const u32 ocount = v.sr_counts[sr_head];
        if (valid_count < v.tsize) {
            // Fill the table densely from the top.
            v.tab_keys[valid_count] = okey;
            v.tab_counts[valid_count] =
                valid_count == 0
                    ? ocount
                    : std::min(ocount, v.tab_counts[valid_count - 1]);
            maskClear(v.pend, valid_count);
            ++valid_count;
        } else if (ocount > v.tab_counts[v.tsize - 1]) {
            v.tab_keys[v.tsize - 1] = okey;
            v.tab_counts[v.tsize - 1] =
                std::min(ocount, v.tab_counts[v.tsize - 2]);
            maskClear(v.pend, v.tsize - 1);
        }
    }
    v.sr_keys[sr_head] = key;
    v.sr_counts[sr_head] = 1;
    if (sr_head == sr_filled)
        ++sr_filled;
    sr_head = sr_head + 1 == v.ssize ? 0 : sr_head + 1;
    ++ops.shifts;
}

/**
 * The paper's sorting step driven by the pending bitmask: pairs whose
 * upper entry has no pending bit provably do nothing (the swap and
 * the increment both require it), so only set bits are visited — the
 * compare charge for the untouched pairs is pure arithmetic. A swap
 * moves a bit from p to p-1, a pair the sequential walk has already
 * passed, so re-scanning from p+1 reproduces the per-pair loop of
 * ContextDict::sortStep() exactly (state and op counts).
 */
inline void
sparseSortStep(const CtxView &v, unsigned valid_count, OpCounts &ops)
{
    // Step 2: the top entry increments when pending.
    if (valid_count > 0 && maskTest(v.pend, 0)) {
        if (v.tab_counts[0] < ContextDict::kCounterMax)
            ++v.tab_counts[0];
        maskClear(v.pend, 0);
        ++ops.counter_incs;
    }
    // Step 3: adjacent pairs; every pair is compared (charged), only
    // pending ones act.
    if (valid_count > 1)
        ops.compares += valid_count - 1;
    int p = maskNext(v.pend, 1);
    while (p >= 0 && static_cast<unsigned>(p) < valid_count) {
        const unsigned up = static_cast<unsigned>(p);
        if (v.tab_counts[up] == v.tab_counts[up - 1]) {
            std::swap(v.tab_keys[up], v.tab_keys[up - 1]);
            const bool below = maskTest(v.pend, up - 1);
            maskSet(v.pend, up - 1);
            maskAssign(v.pend, up, below);
            ++ops.swaps;
        } else {
            if (v.tab_counts[up] < ContextDict::kCounterMax)
                ++v.tab_counts[up];
            maskClear(v.pend, up);
            ++ops.counter_incs;
        }
        p = maskNext(v.pend, up + 1);
    }
}

inline void
divideView(const CtxView &v, unsigned valid_count, unsigned sr_filled,
           OpCounts &ops)
{
    for (unsigned i = 0; i < valid_count; ++i)
        v.tab_counts[i] >>= 1;
    for (unsigned j = 0; j < sr_filled; ++j)
        v.sr_counts[j] >>= 1;
    ++ops.divisions;
}

// The fused span kernels: ContextDict::access() and the predictive
// encode logic in one loop, FSM scalars and dictionary cursors in
// locals, op counts batched, the per-word divide-period modulo
// replaced by a countdown, and the sorting step driven by the pending
// mask. TRANS selects the key flavor at compile time; the AVX2
// variants are additionally compiled with popcnt so the
// transition-cost popcounts become single instructions (results are
// bit-identical; only instruction selection changes). Counter and
// update ordering matches PredictiveTranscoder::encode() +
// ContextDict::access().
#define PREDBUS_CTX_SPAN_BODY(PROBE, TRANS)                            \
    const bool unit_lambda = lambda == 1.0;                            \
    u64 state = state_ref;                                             \
    Word last = last_ref;                                              \
    bool has_last = has_last_ref;                                      \
    unsigned valid_count = valid_count_ref;                            \
    unsigned sr_head = sr_head_ref;                                    \
    unsigned sr_filled = sr_filled_ref;                                \
    u64 cycle = cycle_ref;                                             \
    Word prev = prev_ref;                                              \
    u32 until_divide = 0;                                              \
    if (v.divide_period)                                               \
        until_divide =                                                 \
            v.divide_period -                                          \
            static_cast<u32>(cycle % v.divide_period);                 \
    OpCounts ops;                                                      \
    for (std::size_t i = 0; i < n_words; ++i) {                        \
        const Word value = in[i];                                      \
        ++ops.cycles;                                                  \
        ++ops.matches;                                                 \
        const bool is_repeat = has_last && value == last;              \
        const u64 key = (TRANS) ? ((u64{prev} << 32) | value)          \
                                : u64{value};                          \
        bool hit = false;                                              \
        unsigned hit_index = 0;                                        \
        const int ti = PROBE(v.tab_keys, valid_count, key);            \
        if (ti >= 0) {                                                 \
            hit = true;                                                \
            hit_index = static_cast<unsigned>(ti);                     \
            maskSet(v.pend, hit_index);                                \
        } else {                                                       \
            const int sj = PROBE(v.sr_keys, sr_filled, key);           \
            if (sj >= 0) {                                             \
                hit = true;                                            \
                hit_index = v.tsize + static_cast<unsigned>(sj);       \
                if (v.sr_counts[sj] < ContextDict::kCounterMax) {      \
                    ++v.sr_counts[sj];                                 \
                    ++ops.counter_incs;                                \
                }                                                      \
            } else {                                                   \
                missInsertView(v, valid_count, sr_head, sr_filled,     \
                               key, ops);                              \
            }                                                          \
        }                                                              \
        sparseSortStep(v, valid_count, ops);                           \
        ++cycle;                                                       \
        if (v.divide_period && --until_divide == 0) {                  \
            divideView(v, valid_count, sr_filled, ops);                \
            until_divide = v.divide_period;                            \
        }                                                              \
        prev = value;                                                  \
        if (is_repeat) {                                               \
            ++ops.last_hits;                                           \
        } else if (hit && hit_index < kMaxCodePoints) {                \
            applyHit(state, hit_index, ops, value, lambda,             \
                     cost_aware, unit_lambda);                         \
        } else {                                                       \
            applyMiss(state, ops, value, lambda, unit_lambda);         \
        }                                                              \
        last = value;                                                  \
        has_last = true;                                               \
        out[i] = state;                                                \
    }                                                                  \
    state_ref = state;                                                 \
    last_ref = last;                                                   \
    has_last_ref = has_last;                                           \
    valid_count_ref = valid_count;                                     \
    sr_head_ref = sr_head;                                             \
    sr_filled_ref = sr_filled;                                         \
    cycle_ref = cycle;                                                 \
    prev_ref = prev;                                                   \
    ops_out += ops;

#define PREDBUS_CTX_SPAN_PARAMS                                        \
    const CtxView &v, unsigned &valid_count_ref,                       \
        unsigned &sr_head_ref, unsigned &sr_filled_ref,                \
        u64 &cycle_ref, Word &prev_ref, const Word *in, u64 *out,      \
        std::size_t n_words, u64 &state_ref, Word &last_ref,           \
        bool &has_last_ref, OpCounts &ops_out, double lambda,          \
        bool cost_aware

void
ctxSpanScalarValue(PREDBUS_CTX_SPAN_PARAMS)
{
    PREDBUS_CTX_SPAN_BODY(probeKeysScalar, false)
}

void
ctxSpanScalarTrans(PREDBUS_CTX_SPAN_PARAMS)
{
    PREDBUS_CTX_SPAN_BODY(probeKeysScalar, true)
}

#if defined(__x86_64__)
__attribute__((target("avx2,popcnt"))) void
ctxSpanAvx2Value(PREDBUS_CTX_SPAN_PARAMS)
{
    PREDBUS_CTX_SPAN_BODY(probeKeysAvx2, false)
}

__attribute__((target("avx2,popcnt"))) void
ctxSpanAvx2Trans(PREDBUS_CTX_SPAN_PARAMS)
{
    PREDBUS_CTX_SPAN_BODY(probeKeysAvx2, true)
}
#endif

#undef PREDBUS_CTX_SPAN_BODY
#undef PREDBUS_CTX_SPAN_PARAMS

} // namespace

namespace detail
{

void
contextEncodeSpan(ContextDict &d, const Word *in, u64 *out,
                  std::size_t n, u64 &state, Word &last,
                  bool &has_last, OpCounts &ops, double lambda,
                  bool cost_aware)
{
    const CtxView v{d.tab_keys.data(), d.tab_counts.data(),
                    d.pend.data(),     d.sr_keys.data(),
                    d.sr_counts.data(), d.cfg.table_size,
                    d.cfg.sr_size,      d.cfg.divide_period};
    const bool trans = d.cfg.transition_based;
#if defined(__x86_64__)
    if (g_probe64 != probeKeysScalar) {
        (trans ? ctxSpanAvx2Trans : ctxSpanAvx2Value)(
            v, d.valid_count, d.sr_head, d.sr_filled, d.cycle, d.prev,
            in, out, n, state, last, has_last, ops, lambda,
            cost_aware);
        return;
    }
#endif
    (trans ? ctxSpanScalarTrans : ctxSpanScalarValue)(
        v, d.valid_count, d.sr_head, d.sr_filled, d.cycle, d.prev, in,
        out, n, state, last, has_last, ops, lambda, cost_aware);
}

} // namespace detail

template <>
void
PredictiveTranscoder<ContextDict>::encodeSpan(const Word *in, u64 *out,
                                              std::size_t n)
{
    if (enc_dict.config().oracle_sort) {
        // The ablation flavor keeps the generic per-word loop.
        Transcoder::encodeSpan(in, out, n);
        return;
    }
    OpCounts ops;
    detail::contextEncodeSpan(enc_dict, in, out, n, enc_state,
                              enc_last, enc_has_last, ops, lambda,
                              cost_aware);
    op_counts += ops;
}

ContextDict::ContextDict(const ContextConfig &config) : cfg(config)
{
    if (cfg.table_size < 2)
        fatal("context table needs at least 2 entries");
    if (cfg.sr_size < 1)
        fatal("context shift register needs at least 1 entry");
    if (cfg.table_size + cfg.sr_size > kMaxCodePoints)
        fatal("context table+SR exceeds ", kMaxCodePoints,
              " code points");
    tab_keys.assign((cfg.table_size + 3u) & ~3u, 0);
    tab_counts.assign(cfg.table_size, 0);
    sr_keys.assign((cfg.sr_size + 3u) & ~3u, 0);
    sr_counts.assign(cfg.sr_size, 0);
}

u64
ContextDict::makeKey(Word v) const
{
    return cfg.transition_based ? ((u64{prev} << 32) | v) : u64{v};
}

LookupResult
ContextDict::access(Word v, OpCounts *ops)
{
    const u64 key = makeKey(v);
    LookupResult res{false, 0};
    if (ops)
        ++ops->matches;

    // Probe the frequency table (positions are the codes). The
    // per-word path inlines the scalar probe — an indirect call per
    // probe costs more than it saves at one word per call; the span
    // kernels carry the SIMD dispatch.
    const int ti = probeKeysScalar(tab_keys.data(), valid_count, key);
    if (ti >= 0) {
        res = LookupResult{true, static_cast<unsigned>(ti)};
        // Pending increment (paper step 1). A hit while the bit is
        // already set is lost — the paper's stated caveat.
        pendSet(static_cast<unsigned>(ti));
    } else {
        // Probe the staging shift register.
        const int sj = probeKeysScalar(sr_keys.data(), sr_filled, key);
        if (sj >= 0) {
            res = LookupResult{
                true, cfg.table_size + static_cast<unsigned>(sj)};
            if (sr_counts[sj] < kCounterMax) {
                ++sr_counts[sj];
                if (ops)
                    ++ops->counter_incs;
            }
        } else {
            missInsert(key, ops);
        }
    }

    // Per-cycle maintenance: sorting step and counter division.
    sortStep(ops);
    ++cycle;
    if (cfg.divide_period && cycle % cfg.divide_period == 0)
        divideCounters(ops);

    prev = v;
    return res;
}

void
ContextDict::missInsert(u64 key, OpCounts *ops)
{
    const CtxView v{tab_keys.data(), tab_counts.data(), pend.data(),
                    sr_keys.data(),  sr_counts.data(),  cfg.table_size,
                    cfg.sr_size,     cfg.divide_period};
    OpCounts local;
    missInsertView(v, valid_count, sr_head, sr_filled, key, local);
    if (ops)
        *ops += local;
}

void
ContextDict::sortStep(OpCounts *ops)
{
    if (cfg.oracle_sort) {
        // Ablation: resolve every pending increment immediately and
        // fully re-sort (stable) by count. Costs are charged as if a
        // full sorting network ran: n*log2(n) comparisons and the
        // observed displacement in swaps.
        for (unsigned i = 0; i < valid_count; ++i) {
            if (pendTest(i)) {
                if (tab_counts[i] < kCounterMax)
                    tab_counts[i]++;
                pendClear(i);
                if (ops)
                    ++ops->counter_incs;
            }
        }
        if (ops && valid_count > 1)
            ops->compares += static_cast<u64>(
                valid_count *
                std::max(1.0, std::log2(double(valid_count))));
        for (unsigned i = 1; i < valid_count; ++i) {
            unsigned j = i;
            while (j > 0 && tab_counts[j] > tab_counts[j - 1]) {
                std::swap(tab_counts[j], tab_counts[j - 1]);
                std::swap(tab_keys[j], tab_keys[j - 1]);
                if (ops)
                    ++ops->swaps;
                --j;
            }
        }
        return;
    }
    // Paper §5.3.1. Step 2: the top entry increments when pending.
    if (valid_count > 0 && pendTest(0)) {
        if (tab_counts[0] < kCounterMax)
            tab_counts[0]++;
        pendClear(0);
        if (ops)
            ++ops->counter_incs;
    }
    // Step 3: adjacent pairs.
    for (unsigned p = 1; p < valid_count; ++p) {
        if (ops)
            ++ops->compares;
        if (tab_counts[p] == tab_counts[p - 1]) {
            if (pendTest(p)) {
                std::swap(tab_keys[p], tab_keys[p - 1]);
                const bool below = pendTest(p - 1);
                pendSet(p - 1);
                maskAssign(pend.data(), p, below);
                if (ops)
                    ++ops->swaps;
            }
        } else if (pendTest(p)) {
            if (tab_counts[p] < kCounterMax)
                tab_counts[p]++;
            pendClear(p);
            if (ops)
                ++ops->counter_incs;
        }
    }
}

void
ContextDict::divideCounters(OpCounts *ops)
{
    for (unsigned i = 0; i < valid_count; ++i)
        tab_counts[i] >>= 1;
    for (unsigned j = 0; j < sr_filled; ++j)
        sr_counts[j] >>= 1;
    if (ops)
        ++ops->divisions;
}

Word
ContextDict::valueAt(unsigned index) const
{
    if (index < cfg.table_size) {
        panicIf(index >= valid_count, "context: invalid table index");
        return static_cast<Word>(tab_keys[index] & 0xffffffffu);
    }
    const unsigned j = index - cfg.table_size;
    panicIf(j >= cfg.sr_size || j >= sr_filled,
            "context: invalid SR index");
    return static_cast<Word>(sr_keys[j] & 0xffffffffu);
}

void
ContextDict::reset()
{
    std::fill(tab_keys.begin(), tab_keys.end(), 0);
    std::fill(tab_counts.begin(), tab_counts.end(), 0);
    std::fill(sr_keys.begin(), sr_keys.end(), 0);
    std::fill(sr_counts.begin(), sr_counts.end(), 0);
    pend = {};
    sr_head = 0;
    sr_filled = 0;
    valid_count = 0;
    cycle = 0;
    prev = 0;
}

void
ContextDict::save(StateWriter &w) const
{
    w.writeU32(cfg.table_size);
    w.writeU32(cfg.sr_size);
    w.writeU32(cfg.divide_period);
    w.writeBool(cfg.transition_based);
    w.writeBool(cfg.oracle_sort);
    for (const u64 k : tab_keys)
        w.writeU64(k);
    for (const u32 c : tab_counts)
        w.writeU32(c);
    w.writeU64(pend[0]);
    w.writeU64(pend[1]);
    for (const u64 k : sr_keys)
        w.writeU64(k);
    for (const u32 c : sr_counts)
        w.writeU32(c);
    w.writeU32(sr_head);
    w.writeU32(sr_filled);
    w.writeU32(valid_count);
    w.writeU64(cycle);
    w.writeU32(prev);
}

void
ContextDict::load(StateReader &r)
{
    if (r.readU32() != cfg.table_size ||
        r.readU32() != cfg.sr_size ||
        r.readU32() != cfg.divide_period ||
        r.readBool() != cfg.transition_based ||
        r.readBool() != cfg.oracle_sort) {
        r.markFailed();
        return;
    }
    for (u64 &k : tab_keys)
        k = r.readU64();
    for (u32 &c : tab_counts)
        c = r.readU32();
    pend[0] = r.readU64();
    pend[1] = r.readU64();
    for (u64 &k : sr_keys)
        k = r.readU64();
    for (u32 &c : sr_counts)
        c = r.readU32();
    const u32 s_sr_head = r.readU32();
    const u32 s_sr_filled = r.readU32();
    const u32 s_valid = r.readU32();
    cycle = r.readU64();
    prev = r.readU32();
    if (s_sr_head >= cfg.sr_size || s_sr_filled > cfg.sr_size ||
        s_valid > cfg.table_size) {
        r.markFailed();
        return;
    }
    sr_head = s_sr_head;
    sr_filled = s_sr_filled;
    valid_count = s_valid;
}

bool
ContextDict::sortedByCount() const
{
    for (unsigned p = 1; p < valid_count; ++p)
        if (tab_counts[p] > tab_counts[p - 1])
            return false;
    return true;
}

} // namespace predbus::coding
