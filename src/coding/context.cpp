#include "coding/context.h"

#include <algorithm>
#include <cmath>

namespace predbus::coding
{

ContextDict::ContextDict(const ContextConfig &config) : cfg(config)
{
    if (cfg.table_size < 2)
        fatal("context table needs at least 2 entries");
    if (cfg.sr_size < 1)
        fatal("context shift register needs at least 1 entry");
    if (cfg.table_size + cfg.sr_size > kMaxCodePoints)
        fatal("context table+SR exceeds ", kMaxCodePoints,
              " code points");
    table.resize(cfg.table_size);
    sr.resize(cfg.sr_size);
}

u64
ContextDict::makeKey(Word v) const
{
    return cfg.transition_based ? ((u64{prev} << 32) | v) : u64{v};
}

LookupResult
ContextDict::access(Word v, OpCounts *ops)
{
    const u64 key = makeKey(v);
    LookupResult res{false, 0};
    if (ops)
        ++ops->matches;

    // Probe the frequency table (positions are the codes).
    for (unsigned i = 0; i < valid_count; ++i) {
        if (table[i].key == key) {
            res = LookupResult{true, i};
            // Pending increment (paper step 1). A hit while the bit
            // is already set is lost — the paper's stated caveat.
            table[i].pending = true;
            break;
        }
    }

    // Probe the staging shift register.
    if (!res.hit) {
        for (unsigned j = 0; j < sr.size(); ++j) {
            if (sr[j].valid && sr[j].key == key) {
                res = LookupResult{true, cfg.table_size + j};
                if (sr[j].count < kCounterMax) {
                    ++sr[j].count;
                    if (ops)
                        ++ops->counter_incs;
                }
                break;
            }
        }
    }

    // Miss everywhere: shift in; the displaced entry may be promoted
    // into the table if it earned more counts than the table floor.
    if (!res.hit) {
        const SrEntry outgoing = sr[sr_head];
        if (outgoing.valid) {
            if (valid_count < cfg.table_size) {
                // Fill the table densely from the top; clamp to keep
                // invariant 2.
                TabEntry &slot = table[valid_count];
                slot.key = outgoing.key;
                slot.count =
                    (valid_count == 0)
                        ? outgoing.count
                        : std::min(outgoing.count,
                                   table[valid_count - 1].count);
                slot.pending = false;
                slot.valid = true;
                ++valid_count;
            } else if (outgoing.count >
                       table[cfg.table_size - 1].count) {
                TabEntry &slot = table[cfg.table_size - 1];
                slot.key = outgoing.key;
                slot.count = std::min(
                    outgoing.count, table[cfg.table_size - 2].count);
                slot.pending = false;
            }
        }
        sr[sr_head] = SrEntry{key, 1, true};
        sr_head = (sr_head + 1) % sr.size();
        if (ops)
            ++ops->shifts;
    }

    // Per-cycle maintenance: sorting step and counter division.
    sortStep(ops);
    ++cycle;
    if (cfg.divide_period && cycle % cfg.divide_period == 0)
        divideCounters(ops);

    prev = v;
    return res;
}

void
ContextDict::sortStep(OpCounts *ops)
{
    if (cfg.oracle_sort) {
        // Ablation: resolve every pending increment immediately and
        // fully re-sort (stable) by count. Costs are charged as if a
        // full sorting network ran: n*log2(n) comparisons and the
        // observed displacement in swaps.
        for (unsigned i = 0; i < valid_count; ++i) {
            if (table[i].pending) {
                if (table[i].count < kCounterMax)
                    table[i].count++;
                table[i].pending = false;
                if (ops)
                    ++ops->counter_incs;
            }
        }
        if (ops && valid_count > 1)
            ops->compares += static_cast<u64>(
                valid_count *
                std::max(1.0, std::log2(double(valid_count))));
        for (unsigned i = 1; i < valid_count; ++i) {
            unsigned j = i;
            while (j > 0 && table[j].count > table[j - 1].count) {
                std::swap(table[j], table[j - 1]);
                if (ops)
                    ++ops->swaps;
                --j;
            }
        }
        return;
    }
    // Paper §5.3.1. Step 2: the top entry increments when pending.
    if (valid_count > 0 && table[0].pending) {
        if (table[0].count < kCounterMax)
            table[0].count++;
        table[0].pending = false;
        if (ops)
            ++ops->counter_incs;
    }
    // Step 3: adjacent pairs.
    for (unsigned p = 1; p < valid_count; ++p) {
        if (ops)
            ++ops->compares;
        if (table[p].count == table[p - 1].count) {
            if (table[p].pending) {
                std::swap(table[p], table[p - 1]);
                if (ops)
                    ++ops->swaps;
            }
        } else if (table[p].pending) {
            if (table[p].count < kCounterMax)
                table[p].count++;
            table[p].pending = false;
            if (ops)
                ++ops->counter_incs;
        }
    }
}

void
ContextDict::divideCounters(OpCounts *ops)
{
    for (unsigned i = 0; i < valid_count; ++i)
        table[i].count >>= 1;
    for (auto &entry : sr)
        if (entry.valid)
            entry.count >>= 1;
    if (ops)
        ++ops->divisions;
}

Word
ContextDict::valueAt(unsigned index) const
{
    if (index < cfg.table_size) {
        panicIf(index >= valid_count, "context: invalid table index");
        return static_cast<Word>(table[index].key & 0xffffffffu);
    }
    const unsigned j = index - cfg.table_size;
    panicIf(j >= sr.size() || !sr[j].valid,
            "context: invalid SR index");
    return static_cast<Word>(sr[j].key & 0xffffffffu);
}

void
ContextDict::reset()
{
    std::fill(table.begin(), table.end(), TabEntry{});
    std::fill(sr.begin(), sr.end(), SrEntry{});
    sr_head = 0;
    valid_count = 0;
    cycle = 0;
    prev = 0;
}

bool
ContextDict::sortedByCount() const
{
    for (unsigned p = 1; p < valid_count; ++p)
        if (table[p].count > table[p - 1].count)
            return false;
    return true;
}

} // namespace predbus::coding
