#include "coding/bus_energy.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace predbus::coding
{

BusEnergyMeter::BusEnergyMeter(unsigned n_wires) : width(n_wires)
{
    panicIf(n_wires == 0 || n_wires > 64,
            "BusEnergyMeter supports 1..64 wires");
}

void
BusEnergyMeter::observe(u64 state)
{
    state &= maskLow(width);
    if (first) {
        prev = state;
        first = false;
        return;
    }
    total.tau += static_cast<u64>(hammingDistance(prev, state));
    if (width > 1)
        total.kappa +=
            static_cast<u64>(couplingEvents(prev, state, width));
    prev = state;
}

void
BusEnergyMeter::reset()
{
    prev = 0;
    first = true;
    total = EnergyCount{};
}

EnergyCount
measureUnencoded(std::span<const Word> values)
{
    BusEnergyMeter meter(kDataWidth);
    for (Word v : values)
        meter.observe(v);
    return meter.count();
}

StreamingEvaluator::StreamingEvaluator(Transcoder &codec,
                                       bool verify_decode)
    : codec(codec),
      verify(verify_decode),
      base_meter(kDataWidth),
      coded_meter(std::min(codec.width(), 64u))
{
    // Every evaluated transcoder publishes its per-scheme dictionary
    // counters (coding.<name>.*) to the process registry. Attaching
    // resolves the counters once per codec; per-run cost is the flush
    // in result() — the encode loop itself is untouched.
    if (!codec.hasStatsSink())
        codec.setStatsSink(obs::Registry::global(), codec.name());
    codec.reset();
    codec.syncStatsBaseline();
}

void
StreamingEvaluator::feed(std::span<const Word> values)
{
    words += values.size();
    const bool internal = codec.metersInternally();
    for (Word v : values) {
        base_meter.observe(v);
        const u64 state = codec.encode(v);
        if (!internal)
            coded_meter.observe(state);
        if (verify) {
            const Word back = codec.decode(state);
            panicIf(back != v, codec.name(),
                    ": decode mismatch: sent ", v, " got ", back);
        }
    }
}

CodingResult
StreamingEvaluator::result() const
{
    CodingResult r;
    r.words = words;
    r.base = base_meter.count();
    r.coded = codec.metersInternally() ? codec.internalCount()
                                       : coded_meter.count();
    r.ops = codec.ops();
    codec.flushStats();
    return r;
}

CodingResult
evaluate(Transcoder &codec, std::span<const Word> values,
         bool verify_decode)
{
    StreamingEvaluator eval(codec, verify_decode);
    eval.feed(values);
    return eval.result();
}

} // namespace predbus::coding
