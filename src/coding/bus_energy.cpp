#include "coding/bus_energy.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace predbus::coding
{

BusEnergyMeter::BusEnergyMeter(unsigned n_wires) : width(n_wires)
{
    panicIf(n_wires == 0 || n_wires > 64,
            "BusEnergyMeter supports 1..64 wires");
}

void
BusEnergyMeter::observe(u64 state)
{
    state &= maskLow(width);
    if (first) {
        prev = state;
        first = false;
        return;
    }
    total.tau += static_cast<u64>(hammingDistance(prev, state));
    if (width > 1)
        total.kappa +=
            static_cast<u64>(couplingEvents(prev, state, width));
    prev = state;
}

template <typename T>
void
BusEnergyMeter::observeSpanImpl(const T *states, std::size_t n)
{
    const u64 mask = maskLow(width);
    u64 p = prev;
    std::size_t i = 0;
    if (first && n > 0) {
        p = u64{states[0]} & mask;
        first = false;
        i = 1;
    }
    u64 tau = 0;
    u64 kappa = 0;
    if (width > 1) {
        for (; i < n; ++i) {
            const u64 cur = u64{states[i]} & mask;
            tau += static_cast<u64>(hammingDistance(p, cur));
            kappa += static_cast<u64>(couplingEvents(p, cur, width));
            p = cur;
        }
    } else {
        for (; i < n; ++i) {
            const u64 cur = u64{states[i]} & mask;
            tau += static_cast<u64>(hammingDistance(p, cur));
            p = cur;
        }
    }
    prev = p;
    total.tau += tau;
    total.kappa += kappa;
}

void
BusEnergyMeter::observeSpan(const u64 *states, std::size_t n)
{
    observeSpanImpl(states, n);
}

void
BusEnergyMeter::observeSpan(const Word *values, std::size_t n)
{
    observeSpanImpl(values, n);
}

void
BusEnergyMeter::reset()
{
    prev = 0;
    first = true;
    total = EnergyCount{};
}

EnergyCount
measureUnencoded(std::span<const Word> values)
{
    BusEnergyMeter meter(kDataWidth);
    meter.observeSpan(values.data(), values.size());
    return meter.count();
}

StreamingEvaluator::StreamingEvaluator(Transcoder &codec,
                                       bool verify_decode)
    : codec(codec),
      verify(verify_decode),
      base_meter(kDataWidth),
      coded_meter(std::min(codec.width(), 64u))
{
    // Every evaluated transcoder publishes its per-scheme dictionary
    // counters (coding.<name>.*) to the process registry. Attaching
    // resolves the counters once per codec; per-run cost is the flush
    // in result() — the encode loop itself is untouched.
    if (!codec.hasStatsSink())
        codec.setStatsSink(obs::Registry::global(), codec.name());
    codec.reset();
}

void
StreamingEvaluator::feed(std::span<const Word> values)
{
    // Encoder and decoder FSMs share no state, so batching
    // encode-then-decode per chunk produces the same outputs as the
    // old per-word interleaving.
    words += values.size();
    const bool internal = codec.metersInternally();
    std::size_t off = 0;
    while (off < values.size()) {
        const std::size_t n =
            std::min(kFeedChunk, values.size() - off);
        const Word *chunk = values.data() + off;
        base_meter.observeSpan(chunk, n);
        if (enc_buf.size() < n)
            enc_buf.resize(n);
        codec.encodeSpan(chunk, enc_buf.data(), n);
        if (!internal)
            coded_meter.observeSpan(enc_buf.data(), n);
        if (verify) {
            if (dec_buf.size() < n)
                dec_buf.resize(n);
            codec.decodeSpan(enc_buf.data(), dec_buf.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                panicIf(dec_buf[i] != chunk[i], codec.name(),
                        ": decode mismatch: sent ", chunk[i], " got ",
                        dec_buf[i]);
        }
        off += n;
    }
}

CodingResult
StreamingEvaluator::result() const
{
    CodingResult r;
    r.words = words;
    r.base = base_meter.count();
    r.coded = codec.metersInternally() ? codec.internalCount()
                                       : coded_meter.count();
    r.ops = codec.ops();
    codec.flushStats();
    return r;
}

CodingResult
evaluate(Transcoder &codec, std::span<const Word> values,
         bool verify_decode)
{
    StreamingEvaluator eval(codec, verify_decode);
    eval.feed(values);
    return eval.result();
}

} // namespace predbus::coding
