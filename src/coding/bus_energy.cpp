#include "coding/bus_energy.h"

#include "common/bitops.h"
#include "common/log.h"

namespace predbus::coding
{

BusEnergyMeter::BusEnergyMeter(unsigned n_wires) : width(n_wires)
{
    panicIf(n_wires == 0 || n_wires > 64,
            "BusEnergyMeter supports 1..64 wires");
}

void
BusEnergyMeter::observe(u64 state)
{
    state &= maskLow(width);
    if (first) {
        prev = state;
        first = false;
        return;
    }
    total.tau += static_cast<u64>(hammingDistance(prev, state));
    if (width > 1)
        total.kappa +=
            static_cast<u64>(couplingEvents(prev, state, width));
    prev = state;
}

void
BusEnergyMeter::reset()
{
    prev = 0;
    first = true;
    total = EnergyCount{};
}

EnergyCount
measureUnencoded(std::span<const Word> values)
{
    BusEnergyMeter meter(kDataWidth);
    for (Word v : values)
        meter.observe(v);
    return meter.count();
}

CodingResult
evaluate(Transcoder &codec, std::span<const Word> values,
         bool verify_decode)
{
    codec.reset();
    CodingResult result;
    result.words = values.size();
    result.base = measureUnencoded(values);

    if (codec.metersInternally()) {
        for (Word v : values) {
            const u64 token = codec.encode(v);
            if (verify_decode) {
                const Word back = codec.decode(token);
                panicIf(back != v, codec.name(),
                        ": decode mismatch: sent ", v, " got ", back);
            }
        }
        result.coded = codec.internalCount();
    } else {
        BusEnergyMeter meter(codec.width());
        for (Word v : values) {
            const u64 state = codec.encode(v);
            meter.observe(state);
            if (verify_decode) {
                const Word back = codec.decode(state);
                panicIf(back != v, codec.name(),
                        ": decode mismatch: sent ", v, " got ", back);
            }
        }
        result.coded = meter.count();
    }
    result.ops = codec.ops();
    return result;
}

} // namespace predbus::coding
