#include "coding/bus_energy.h"

#include <algorithm>

#include "coding/snapshot.h"
#include "coding/span_kernel.h"
#include "common/bitops.h"
#include "common/log.h"
#include "obs/metrics.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define PREDBUS_METER_AVX2_DISPATCH 1
#endif

namespace predbus::coding
{

namespace
{

/* Span kernels below use the XOR-delta identity: with both states
 * pre-masked and d = prev ^ cur,
 *
 *   hammingDistance(prev, cur)       == popcount(d)
 *   couplingEvents(prev, cur, width) == popcount((d ^ (d >> 1))
 *                                                & maskLow(width - 1))
 *
 * (the relative views cancel: (p^(p>>1)) ^ (c^(c>>1)) = d ^ (d>>1)).
 * maskLow(0) == 0, so a 1-wire meter's kappa term masks to zero and
 * no width branch is needed.  The caller guarantees i >= 1 and n >= 1
 * so states[i-1] is always a valid "previous" element to reload. */

template <typename T>
void
spanCountsScalar(const T *states, std::size_t i, std::size_t n,
                 u64 mask, u64 mask2, u64 &prev, u64 &tau_out,
                 u64 &kappa_out)
{
    u64 p = prev;
    u64 tau = 0;
    u64 kappa = 0;
    for (; i < n; ++i) {
        const u64 cur = u64{states[i]} & mask;
        const u64 d = p ^ cur;
        tau += static_cast<u64>(std::popcount(d));
        kappa += static_cast<u64>(std::popcount((d ^ (d >> 1)) & mask2));
        p = cur;
    }
    prev = p;
    tau_out += tau;
    kappa_out += kappa;
}

#ifdef PREDBUS_METER_AVX2_DISPATCH

/* Same dispatch policy as the fused codec kernels, including the
 * PREDBUS_FORCE_SCALAR override, so the force-scalar differential
 * suite pins the meter to spanCountsScalar too. */
bool
haveAvx2()
{
    static const bool have = detail::useAvx2Kernels();
    return have;
}

/* Vectorized tau/kappa over a span of 32-bit words (the unencoded
 * bus).  The delta stream d_j = x[j-1] ^ x[j] is formed from two
 * overlapping unaligned loads; per-byte popcounts come from the
 * classic 4-bit-LUT vpshufb trick and are folded into four u64 lanes
 * with vpsadbw each iteration, so the accumulators never overflow. */
__attribute__((target("avx2"))) void
spanCountsAvx2(const Word *states, std::size_t i, std::size_t n,
               u64 mask, u64 mask2, u64 &prev, u64 &tau_out,
               u64 &kappa_out)
{
    u64 p = prev;
    u64 tau = 0;
    u64 kappa = 0;
    if (i < n) {
        // First delta pairs with the carried previous state, which is
        // not states[i-1] when the span continues an earlier one.
        const u64 cur = u64{states[i]} & mask;
        const u64 d = p ^ cur;
        tau += static_cast<u64>(std::popcount(d));
        kappa += static_cast<u64>(std::popcount((d ^ (d >> 1)) & mask2));
        p = cur;
        ++i;
    }
    const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
    const __m256i vmask2 = _mm256_set1_epi32(static_cast<int>(mask2));
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                         0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low4 = _mm256_set1_epi8(0x0f);
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc_t = zero;
    __m256i acc_k = zero;
    for (; i + 8 <= n; i += 8) {
        const __m256i cur = _mm256_and_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(states + i)),
            vmask);
        const __m256i prv = _mm256_and_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(states + i - 1)),
            vmask);
        const __m256i d = _mm256_xor_si256(cur, prv);
        const __m256i e = _mm256_and_si256(
            _mm256_xor_si256(d, _mm256_srli_epi32(d, 1)), vmask2);
        const __m256i dl =
            _mm256_shuffle_epi8(lut, _mm256_and_si256(d, low4));
        const __m256i dh = _mm256_shuffle_epi8(
            lut, _mm256_and_si256(_mm256_srli_epi32(d, 4), low4));
        const __m256i el =
            _mm256_shuffle_epi8(lut, _mm256_and_si256(e, low4));
        const __m256i eh = _mm256_shuffle_epi8(
            lut, _mm256_and_si256(_mm256_srli_epi32(e, 4), low4));
        acc_t = _mm256_add_epi64(
            acc_t, _mm256_sad_epu8(_mm256_add_epi8(dl, dh), zero));
        acc_k = _mm256_add_epi64(
            acc_k, _mm256_sad_epu8(_mm256_add_epi8(el, eh), zero));
    }
    u64 lanes_t[4];
    u64 lanes_k[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes_t), acc_t);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes_k), acc_k);
    tau += lanes_t[0] + lanes_t[1] + lanes_t[2] + lanes_t[3];
    kappa += lanes_k[0] + lanes_k[1] + lanes_k[2] + lanes_k[3];
    p = u64{states[i - 1]} & mask;
    for (; i < n; ++i) {
        const u64 cur = u64{states[i]} & mask;
        const u64 d = p ^ cur;
        tau += static_cast<u64>(std::popcount(d));
        kappa += static_cast<u64>(std::popcount((d ^ (d >> 1)) & mask2));
        p = cur;
    }
    prev = p;
    tau_out += tau;
    kappa_out += kappa;
}

/* One vector step of the 64-bit kernel below: four masked deltas,
 * their coupling view, and byte-popcounts folded into the two u64
 * lane accumulators. A separate function (not a lambda) because the
 * target attribute does not propagate into closures. */
__attribute__((target("avx2"))) inline void
stepCounts64(const u64 *states, std::size_t at, __m256i vmask,
             __m256i vmask2, __m256i lut, __m256i low4, __m256i zero,
             __m256i &acc_t, __m256i &acc_k)
{
    const __m256i cur = _mm256_and_si256(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(states + at)),
        vmask);
    const __m256i prv = _mm256_and_si256(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(states + at - 1)),
        vmask);
    const __m256i d = _mm256_xor_si256(cur, prv);
    const __m256i e = _mm256_and_si256(
        _mm256_xor_si256(d, _mm256_srli_epi64(d, 1)), vmask2);
    const __m256i dl =
        _mm256_shuffle_epi8(lut, _mm256_and_si256(d, low4));
    const __m256i dh = _mm256_shuffle_epi8(
        lut, _mm256_and_si256(_mm256_srli_epi64(d, 4), low4));
    const __m256i el =
        _mm256_shuffle_epi8(lut, _mm256_and_si256(e, low4));
    const __m256i eh = _mm256_shuffle_epi8(
        lut, _mm256_and_si256(_mm256_srli_epi64(e, 4), low4));
    acc_t = _mm256_add_epi64(
        acc_t, _mm256_sad_epu8(_mm256_add_epi8(dl, dh), zero));
    acc_k = _mm256_add_epi64(
        acc_k, _mm256_sad_epu8(_mm256_add_epi8(el, eh), zero));
}

/* Same kernel over 64-bit wire states (coded buses up to 64 wires),
 * four elements per vector with 64-bit lane shifts. */
__attribute__((target("avx2"))) void
spanCountsAvx2(const u64 *states, std::size_t i, std::size_t n,
               u64 mask, u64 mask2, u64 &prev, u64 &tau_out,
               u64 &kappa_out)
{
    u64 p = prev;
    u64 tau = 0;
    u64 kappa = 0;
    if (i < n) {
        const u64 cur = states[i] & mask;
        const u64 d = p ^ cur;
        tau += static_cast<u64>(std::popcount(d));
        kappa += static_cast<u64>(std::popcount((d ^ (d >> 1)) & mask2));
        p = cur;
        ++i;
    }
    const __m256i vmask =
        _mm256_set1_epi64x(static_cast<long long>(mask));
    const __m256i vmask2 =
        _mm256_set1_epi64x(static_cast<long long>(mask2));
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                         0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low4 = _mm256_set1_epi8(0x0f);
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc_t = zero;
    __m256i acc_k = zero;
    // Two independent vectors per iteration: at 4 elements per
    // 256-bit lane group the single-vector loop is latency-bound on
    // the accumulator adds.
    __m256i acc_t2 = zero;
    __m256i acc_k2 = zero;
    for (; i + 8 <= n; i += 8) {
        stepCounts64(states, i, vmask, vmask2, lut, low4, zero,
                     acc_t, acc_k);
        stepCounts64(states, i + 4, vmask, vmask2, lut, low4, zero,
                     acc_t2, acc_k2);
    }
    for (; i + 4 <= n; i += 4)
        stepCounts64(states, i, vmask, vmask2, lut, low4, zero,
                     acc_t, acc_k);
    acc_t = _mm256_add_epi64(acc_t, acc_t2);
    acc_k = _mm256_add_epi64(acc_k, acc_k2);
    u64 lanes_t[4];
    u64 lanes_k[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes_t), acc_t);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes_k), acc_k);
    tau += lanes_t[0] + lanes_t[1] + lanes_t[2] + lanes_t[3];
    kappa += lanes_k[0] + lanes_k[1] + lanes_k[2] + lanes_k[3];
    p = states[i - 1] & mask;
    for (; i < n; ++i) {
        const u64 cur = states[i] & mask;
        const u64 d = p ^ cur;
        tau += static_cast<u64>(std::popcount(d));
        kappa += static_cast<u64>(std::popcount((d ^ (d >> 1)) & mask2));
        p = cur;
    }
    prev = p;
    tau_out += tau;
    kappa_out += kappa;
}

#endif // PREDBUS_METER_AVX2_DISPATCH

} // namespace

BusEnergyMeter::BusEnergyMeter(unsigned n_wires) : width(n_wires)
{
    panicIf(n_wires == 0 || n_wires > 64,
            "BusEnergyMeter supports 1..64 wires");
}

void
BusEnergyMeter::observe(u64 state)
{
    state &= maskLow(width);
    if (first) {
        prev = state;
        first = false;
        return;
    }
    total.tau += static_cast<u64>(hammingDistance(prev, state));
    if (width > 1)
        total.kappa +=
            static_cast<u64>(couplingEvents(prev, state, width));
    prev = state;
}

template <typename T>
void
BusEnergyMeter::observeSpanImpl(const T *states, std::size_t n)
{
    if (n == 0)
        return;
    const u64 mask = maskLow(width);
    const u64 mask2 = maskLow(width - 1);
    std::size_t i = 0;
    if (first) {
        prev = u64{states[0]} & mask;
        first = false;
        i = 1;
    }
    u64 tau = 0;
    u64 kappa = 0;
#ifdef PREDBUS_METER_AVX2_DISPATCH
    if (haveAvx2())
        spanCountsAvx2(states, i, n, mask, mask2, prev, tau, kappa);
    else
#endif
        spanCountsScalar(states, i, n, mask, mask2, prev, tau, kappa);
    total.tau += tau;
    total.kappa += kappa;
}

void
BusEnergyMeter::observeSpan(const u64 *states, std::size_t n)
{
    observeSpanImpl(states, n);
}

void
BusEnergyMeter::observeSpan(const Word *values, std::size_t n)
{
    observeSpanImpl(values, n);
}

void
BusEnergyMeter::reset()
{
    prev = 0;
    first = true;
    total = EnergyCount{};
}

void
BusEnergyMeter::save(StateWriter &w) const
{
    w.writeU32(width);
    w.writeU64(prev);
    w.writeBool(first);
    saveEnergyCount(w, total);
}

void
BusEnergyMeter::load(StateReader &r)
{
    if (r.readU32() != width) {
        r.markFailed();
        return;
    }
    prev = r.readU64();
    first = r.readBool();
    loadEnergyCount(r, total);
}

EnergyCount
measureUnencoded(std::span<const Word> values)
{
    BusEnergyMeter meter(kDataWidth);
    meter.observeSpan(values.data(), values.size());
    return meter.count();
}

StreamingEvaluator::StreamingEvaluator(Transcoder &codec,
                                       bool verify_decode)
    : codec(codec),
      verify(verify_decode),
      base_meter(kDataWidth),
      coded_meter(std::min(codec.width(), 64u))
{
    // Every evaluated transcoder publishes its per-scheme dictionary
    // counters (coding.<name>.*) to the process registry. Attaching
    // resolves the counters once per codec; per-run cost is the flush
    // in result() — the encode loop itself is untouched.
    if (!codec.hasStatsSink())
        codec.setStatsSink(obs::Registry::global(), codec.name());
    codec.reset();
}

void
StreamingEvaluator::feed(std::span<const Word> values)
{
    // Encoder and decoder FSMs share no state, so batching
    // encode-then-decode per chunk produces the same outputs as the
    // old per-word interleaving.
    words += values.size();
    const bool internal = codec.metersInternally();
    std::size_t off = 0;
    while (off < values.size()) {
        const std::size_t n =
            std::min(kFeedChunk, values.size() - off);
        const Word *chunk = values.data() + off;
        base_meter.observeSpan(chunk, n);
        if (enc_buf.size() < n)
            enc_buf.resize(n);
        codec.encodeSpan(chunk, enc_buf.data(), n);
        if (!internal)
            coded_meter.observeSpan(enc_buf.data(), n);
        if (verify) {
            if (dec_buf.size() < n)
                dec_buf.resize(n);
            codec.decodeSpan(enc_buf.data(), dec_buf.data(), n);
            for (std::size_t i = 0; i < n; ++i)
                panicIf(dec_buf[i] != chunk[i], codec.name(),
                        ": decode mismatch: sent ", chunk[i], " got ",
                        dec_buf[i]);
        }
        off += n;
    }
}

CodingResult
StreamingEvaluator::result() const
{
    CodingResult r;
    r.words = words;
    r.base = base_meter.count();
    r.coded = codec.metersInternally() ? codec.internalCount()
                                       : coded_meter.count();
    r.ops = codec.ops();
    codec.flushStats();
    return r;
}

CodingResult
evaluate(Transcoder &codec, std::span<const Word> values,
         bool verify_decode)
{
    StreamingEvaluator eval(codec, verify_decode);
    eval.feed(values);
    return eval.result();
}

} // namespace predbus::coding
