#include "coding/session.h"

#include <algorithm>

#include "coding/factory.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace predbus::coding
{

CodecSession::CodecSession(std::unique_ptr<Transcoder> transcoder)
    : transcoder(std::move(transcoder))
{
    panicIf(!this->transcoder, "CodecSession needs a transcoder");
}

CodecSession::CodecSession(const std::string &spec)
    : CodecSession(makeFromSpec(spec))
{
}

void
CodecSession::encodeBatch(std::span<const Word> values,
                          std::vector<u64> &out)
{
    const std::size_t base = out.size();
    out.resize(base + values.size());
    transcoder->encodeSpan(values.data(), out.data() + base,
                           values.size());
    for (std::size_t i = base; i < out.size(); ++i)
        sum = checksumFold(sum, out[i]);
    if (base_meter) {
        base_meter->observeSpan(values.data(), values.size());
        if (!transcoder->metersInternally())
            coded_meter->observeSpan(out.data() + base,
                                     values.size());
        metered_words += values.size();
    }
    ++seq_no;
    if (m_batches) {
        m_encode_words->inc(values.size());
        m_batches->inc();
    }
}

void
CodecSession::decodeBatch(std::span<const u64> states,
                          std::vector<Word> &out)
{
    const std::size_t base = out.size();
    out.resize(base + states.size());
    transcoder->decodeSpan(states.data(), out.data() + base,
                           states.size());
    for (std::size_t i = base; i < out.size(); ++i)
        sum = checksumFold(sum, out[i]);
    if (base_meter) {
        base_meter->observeSpan(out.data() + base, states.size());
        if (!transcoder->metersInternally())
            coded_meter->observeSpan(states.data(), states.size());
        metered_words += states.size();
    }
    ++seq_no;
    if (m_batches) {
        m_decode_words->inc(states.size());
        m_batches->inc();
    }
}

void
CodecSession::attachSpanMetrics(obs::Registry &registry)
{
    m_encode_words = &registry.counter("coding.span.encode_words");
    m_decode_words = &registry.counter("coding.span.decode_words");
    m_batches = &registry.counter("coding.span.batches");
}

void
CodecSession::enableEnergyMetering()
{
    if (base_meter)
        return;
    // Same widths as StreamingEvaluator: the baseline is the paper's
    // unencoded 32-wire data bus, the coded side is the codec's own
    // (BusEnergyMeter caps at 64; wider codecs meter internally).
    base_meter.emplace(kDataWidth);
    coded_meter.emplace(std::min(transcoder->width(), 64u));
}

SessionEnergy
CodecSession::energy() const
{
    SessionEnergy e;
    if (!base_meter)
        return e;
    e.base = base_meter->count();
    e.coded = transcoder->metersInternally()
                  ? transcoder->internalCount()
                  : coded_meter->count();
    e.words = metered_words;
    return e;
}

void
CodecSession::resync()
{
    // reset() also re-baselines the stats sink, so a post-resync
    // flushStats() publishes only new-epoch operations.
    transcoder->reset();
    seq_no = 0;
    sum = kChecksumSeed;
    ++epoch_no;
    if (base_meter) {
        base_meter->reset();
        coded_meter->reset();
        metered_words = 0;
    }
}

} // namespace predbus::coding
