#include "coding/session.h"

#include <algorithm>

#include "coding/factory.h"
#include "coding/snapshot.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace predbus::coding
{

CodecSession::CodecSession(std::unique_ptr<Transcoder> transcoder)
    : transcoder(std::move(transcoder))
{
    panicIf(!this->transcoder, "CodecSession needs a transcoder");
}

CodecSession::CodecSession(const std::string &spec)
    : CodecSession(makeFromSpec(spec))
{
    spec_str = spec;
}

std::vector<u8>
CodecSession::snapshot() const
{
    if (spec_str.empty())
        fatal("session snapshot requires a spec-constructed session");
    StateWriter w;
    w.writeU32(kSnapshotMagic);
    w.writeU16(kSnapshotVersion);
    w.writeU16(0);
    w.writeString(spec_str);
    w.writeU64(seq_no);
    w.writeU64(sum);
    w.writeU32(epoch_no);
    w.writeBool(base_meter.has_value());
    if (base_meter) {
        base_meter->save(w);
        coded_meter->save(w);
        w.writeU64(metered_words);
    }
    transcoder->save(w);
    std::vector<u8> bytes = w.take();
    const u64 check = snapshotChecksum(bytes.data(), bytes.size());
    for (int i = 0; i < 8; ++i)
        bytes.push_back(static_cast<u8>(check >> (8 * i)));
    return bytes;
}

CodecSession
CodecSession::restore(std::span<const u8> bytes)
{
    if (bytes.size() < 16)
        fatal("session snapshot truncated (", bytes.size(), " bytes)");
    const std::size_t body = bytes.size() - 8;
    u64 stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<u64>(bytes[body + i]) << (8 * i);
    if (snapshotChecksum(bytes.data(), body) != stored)
        fatal("session snapshot failed its integrity checksum");

    StateReader r(bytes.first(body));
    if (r.readU32() != kSnapshotMagic)
        fatal("session snapshot has a bad magic");
    const u16 version = r.readU16();
    if (version != kSnapshotVersion)
        fatal("unsupported session snapshot version ", version);
    r.readU16();  // reserved
    const std::string spec = r.readString();
    if (!r.ok() || spec.empty())
        fatal("session snapshot carries no codec spec");

    CodecSession session(spec);
    session.seq_no = r.readU64();
    session.sum = r.readU64();
    session.epoch_no = r.readU32();
    if (r.readBool()) {
        session.enableEnergyMetering();
        session.base_meter->load(r);
        session.coded_meter->load(r);
        session.metered_words = r.readU64();
    }
    session.transcoder->load(r);
    if (!r.ok() || !r.atEnd())
        fatal("session snapshot is corrupt (", spec, ")");
    return session;
}

void
CodecSession::encodeBatch(std::span<const Word> values,
                          std::vector<u64> &out)
{
    const std::size_t base = out.size();
    out.resize(base + values.size());
    transcoder->encodeSpan(values.data(), out.data() + base,
                           values.size());
    for (std::size_t i = base; i < out.size(); ++i)
        sum = checksumFold(sum, out[i]);
    if (base_meter) {
        base_meter->observeSpan(values.data(), values.size());
        if (!transcoder->metersInternally())
            coded_meter->observeSpan(out.data() + base,
                                     values.size());
        metered_words += values.size();
    }
    ++seq_no;
    if (m_batches) {
        m_encode_words->inc(values.size());
        m_batches->inc();
    }
}

void
CodecSession::decodeBatch(std::span<const u64> states,
                          std::vector<Word> &out)
{
    const std::size_t base = out.size();
    out.resize(base + states.size());
    transcoder->decodeSpan(states.data(), out.data() + base,
                           states.size());
    for (std::size_t i = base; i < out.size(); ++i)
        sum = checksumFold(sum, out[i]);
    if (base_meter) {
        base_meter->observeSpan(out.data() + base, states.size());
        if (!transcoder->metersInternally())
            coded_meter->observeSpan(states.data(), states.size());
        metered_words += states.size();
    }
    ++seq_no;
    if (m_batches) {
        m_decode_words->inc(states.size());
        m_batches->inc();
    }
}

void
CodecSession::attachSpanMetrics(obs::Registry &registry)
{
    m_encode_words = &registry.counter("coding.span.encode_words");
    m_decode_words = &registry.counter("coding.span.decode_words");
    m_batches = &registry.counter("coding.span.batches");
}

void
CodecSession::enableEnergyMetering()
{
    if (base_meter)
        return;
    // Same widths as StreamingEvaluator: the baseline is the paper's
    // unencoded 32-wire data bus, the coded side is the codec's own
    // (BusEnergyMeter caps at 64; wider codecs meter internally).
    base_meter.emplace(kDataWidth);
    coded_meter.emplace(std::min(transcoder->width(), 64u));
}

SessionEnergy
CodecSession::energy() const
{
    SessionEnergy e;
    if (!base_meter)
        return e;
    e.base = base_meter->count();
    e.coded = transcoder->metersInternally()
                  ? transcoder->internalCount()
                  : coded_meter->count();
    e.words = metered_words;
    return e;
}

void
CodecSession::resync()
{
    // reset() also re-baselines the stats sink, so a post-resync
    // flushStats() publishes only new-epoch operations.
    transcoder->reset();
    seq_no = 0;
    sum = kChecksumSeed;
    ++epoch_no;
    if (base_meter) {
        base_meter->reset();
        coded_meter->reset();
        metered_words = 0;
    }
}

} // namespace predbus::coding
