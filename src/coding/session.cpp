#include "coding/session.h"

#include "coding/factory.h"
#include "common/log.h"

namespace predbus::coding
{

CodecSession::CodecSession(std::unique_ptr<Transcoder> transcoder)
    : transcoder(std::move(transcoder))
{
    panicIf(!this->transcoder, "CodecSession needs a transcoder");
}

CodecSession::CodecSession(const std::string &spec)
    : CodecSession(makeFromSpec(spec))
{
}

void
CodecSession::encodeBatch(std::span<const Word> values,
                          std::vector<u64> &out)
{
    out.reserve(out.size() + values.size());
    for (const Word value : values) {
        const u64 state = transcoder->encode(value);
        sum = checksumFold(sum, state);
        out.push_back(state);
    }
    ++seq_no;
}

void
CodecSession::decodeBatch(std::span<const u64> states,
                          std::vector<Word> &out)
{
    out.reserve(out.size() + states.size());
    for (const u64 state : states) {
        const Word value = transcoder->decode(state);
        sum = checksumFold(sum, value);
        out.push_back(value);
    }
    ++seq_no;
}

void
CodecSession::resync()
{
    transcoder->reset();
    transcoder->syncStatsBaseline();
    seq_no = 0;
    sum = kChecksumSeed;
    ++epoch_no;
}

} // namespace predbus::coding
