#include "coding/session.h"

#include "coding/factory.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace predbus::coding
{

CodecSession::CodecSession(std::unique_ptr<Transcoder> transcoder)
    : transcoder(std::move(transcoder))
{
    panicIf(!this->transcoder, "CodecSession needs a transcoder");
}

CodecSession::CodecSession(const std::string &spec)
    : CodecSession(makeFromSpec(spec))
{
}

void
CodecSession::encodeBatch(std::span<const Word> values,
                          std::vector<u64> &out)
{
    const std::size_t base = out.size();
    out.resize(base + values.size());
    transcoder->encodeSpan(values.data(), out.data() + base,
                           values.size());
    for (std::size_t i = base; i < out.size(); ++i)
        sum = checksumFold(sum, out[i]);
    ++seq_no;
    if (m_batches) {
        m_encode_words->inc(values.size());
        m_batches->inc();
    }
}

void
CodecSession::decodeBatch(std::span<const u64> states,
                          std::vector<Word> &out)
{
    const std::size_t base = out.size();
    out.resize(base + states.size());
    transcoder->decodeSpan(states.data(), out.data() + base,
                           states.size());
    for (std::size_t i = base; i < out.size(); ++i)
        sum = checksumFold(sum, out[i]);
    ++seq_no;
    if (m_batches) {
        m_decode_words->inc(states.size());
        m_batches->inc();
    }
}

void
CodecSession::attachSpanMetrics(obs::Registry &registry)
{
    m_encode_words = &registry.counter("coding.span.encode_words");
    m_decode_words = &registry.counter("coding.span.decode_words");
    m_batches = &registry.counter("coding.span.batches");
}

void
CodecSession::resync()
{
    // reset() also re-baselines the stats sink, so a post-resync
    // flushStats() publishes only new-epoch operations.
    transcoder->reset();
    seq_no = 0;
    sum = kChecksumSeed;
    ++epoch_no;
}

} // namespace predbus::coding
