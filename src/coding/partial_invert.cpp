#include "coding/partial_invert.h"

#include "common/bitops.h"
#include "coding/snapshot.h"
#include "common/log.h"

namespace predbus::coding
{

PartialBusInvert::PartialBusInvert(unsigned groups,
                                   double assumed_lambda)
    : n_groups(groups), assumed_lambda(assumed_lambda)
{
    if (groups == 0 || kDataWidth % groups != 0)
        fatal("partial bus-invert: group count must divide ",
              kDataWidth);
    group_bits = kDataWidth / groups;
}

std::string
PartialBusInvert::name() const
{
    return "pbi" + std::to_string(n_groups);
}

u64
PartialBusInvert::encode(Word value)
{
    ++op_counts.cycles;
    ++op_counts.raw_sends;
    // Greedy per-group selection. Groups are adjacent on the bus, so
    // a group's inversion choice affects the coupling boundary with
    // its neighbor; the greedy pass goes low-to-high using the
    // already-decided lower neighbor (hardware does the same with a
    // ripple of majority voters).
    u64 next = 0;
    for (unsigned g = 0; g < n_groups; ++g) {
        const unsigned lo = g * group_bits;
        const u64 field_mask = maskLow(group_bits) << lo;
        const u64 plain = u64{value} & field_mask;
        const u64 inverted = ~u64{value} & field_mask;
        const u64 invert_wire = u64{1} << (kDataWidth + g);

        // Cost of each candidate against the current full state,
        // considering wires up to this group's top boundary plus the
        // invert wire (an approximation the per-group voter can make).
        const u64 base = next;  // lower groups already decided
        const u64 cand0 = base | plain;
        const u64 cand1 = base | inverted | invert_wire;
        const unsigned span = lo + group_bits;
        const double cost0 =
            transitionCostBits(cand0, span, g, false);
        const double cost1 = transitionCostBits(cand1, span, g, true);
        next = (cost0 <= cost1) ? cand0 : cand1;
        ++op_counts.compares;
    }
    enc_state = next;
    return next;
}

double
PartialBusInvert::transitionCostBits(u64 candidate, unsigned span,
                                     unsigned group,
                                     bool invert_wire_set) const
{
    // Self transitions over the decided data span plus this group's
    // invert wire; coupling over the decided span.
    const u64 data_mask = maskLow(span);
    const u64 prev_data = enc_state & data_mask;
    const u64 cand_data = candidate & data_mask;
    double cost = hammingDistance(prev_data, cand_data);
    if (span > 1) {
        cost += assumed_lambda *
                couplingEvents(prev_data, cand_data, span);
    }
    const bool prev_inv =
        (enc_state >> (kDataWidth + group)) & 1;
    cost += (prev_inv != invert_wire_set) ? 1.0 : 0.0;
    return cost;
}

Word
PartialBusInvert::decode(u64 wire_state)
{
    u64 value = wire_state & maskLow(kDataWidth);
    for (unsigned g = 0; g < n_groups; ++g) {
        if ((wire_state >> (kDataWidth + g)) & 1) {
            const u64 field_mask = maskLow(group_bits)
                                   << (g * group_bits);
            value ^= field_mask;
        }
    }
    dec_state = wire_state;
    return static_cast<Word>(value);
}

// Devirtualized batch loops over the per-word paths.
void
PartialBusInvert::encodeSpan(const Word *in, u64 *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = PartialBusInvert::encode(in[i]);
}

void
PartialBusInvert::decodeSpan(const u64 *in, Word *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = PartialBusInvert::decode(in[i]);
}

void
PartialBusInvert::resetState()
{
    enc_state = 0;
    dec_state = 0;
}

void
PartialBusInvert::saveState(StateWriter &w) const
{
    w.writeU64(enc_state);
    w.writeU64(dec_state);
}

void
PartialBusInvert::loadState(StateReader &r)
{
    enc_state = r.readU64();
    dec_state = r.readU64();
}

} // namespace predbus::coding
