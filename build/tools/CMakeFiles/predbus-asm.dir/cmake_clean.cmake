file(REMOVE_RECURSE
  "CMakeFiles/predbus-asm.dir/predbus_asm.cpp.o"
  "CMakeFiles/predbus-asm.dir/predbus_asm.cpp.o.d"
  "predbus-asm"
  "predbus-asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus-asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
