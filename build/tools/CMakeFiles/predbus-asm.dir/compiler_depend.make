# Empty compiler generated dependencies file for predbus-asm.
# This may be replaced when dependencies are built.
