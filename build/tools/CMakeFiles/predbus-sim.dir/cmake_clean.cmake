file(REMOVE_RECURSE
  "CMakeFiles/predbus-sim.dir/predbus_sim.cpp.o"
  "CMakeFiles/predbus-sim.dir/predbus_sim.cpp.o.d"
  "predbus-sim"
  "predbus-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
