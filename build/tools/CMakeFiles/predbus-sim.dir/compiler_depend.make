# Empty compiler generated dependencies file for predbus-sim.
# This may be replaced when dependencies are built.
