# Empty dependencies file for predbus-codec.
# This may be replaced when dependencies are built.
