file(REMOVE_RECURSE
  "CMakeFiles/predbus-codec.dir/predbus_codec.cpp.o"
  "CMakeFiles/predbus-codec.dir/predbus_codec.cpp.o.d"
  "predbus-codec"
  "predbus-codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus-codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
