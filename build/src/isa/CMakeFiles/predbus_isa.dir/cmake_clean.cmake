file(REMOVE_RECURSE
  "CMakeFiles/predbus_isa.dir/asm_parser.cpp.o"
  "CMakeFiles/predbus_isa.dir/asm_parser.cpp.o.d"
  "CMakeFiles/predbus_isa.dir/assembler.cpp.o"
  "CMakeFiles/predbus_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/predbus_isa.dir/disasm.cpp.o"
  "CMakeFiles/predbus_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/predbus_isa.dir/encoding.cpp.o"
  "CMakeFiles/predbus_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/predbus_isa.dir/program.cpp.o"
  "CMakeFiles/predbus_isa.dir/program.cpp.o.d"
  "libpredbus_isa.a"
  "libpredbus_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
