# Empty dependencies file for predbus_isa.
# This may be replaced when dependencies are built.
