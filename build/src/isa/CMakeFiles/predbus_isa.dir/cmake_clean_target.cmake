file(REMOVE_RECURSE
  "libpredbus_isa.a"
)
