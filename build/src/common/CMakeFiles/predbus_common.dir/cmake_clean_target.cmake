file(REMOVE_RECURSE
  "libpredbus_common.a"
)
