# Empty dependencies file for predbus_common.
# This may be replaced when dependencies are built.
