file(REMOVE_RECURSE
  "CMakeFiles/predbus_common.dir/stats.cpp.o"
  "CMakeFiles/predbus_common.dir/stats.cpp.o.d"
  "CMakeFiles/predbus_common.dir/table.cpp.o"
  "CMakeFiles/predbus_common.dir/table.cpp.o.d"
  "libpredbus_common.a"
  "libpredbus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
