file(REMOVE_RECURSE
  "libpredbus_sim.a"
)
