
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bpred.cpp" "src/sim/CMakeFiles/predbus_sim.dir/bpred.cpp.o" "gcc" "src/sim/CMakeFiles/predbus_sim.dir/bpred.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/predbus_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/predbus_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/functional.cpp" "src/sim/CMakeFiles/predbus_sim.dir/functional.cpp.o" "gcc" "src/sim/CMakeFiles/predbus_sim.dir/functional.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/predbus_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/predbus_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/predbus_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/predbus_sim.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/predbus_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/predbus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/predbus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
