# Empty compiler generated dependencies file for predbus_sim.
# This may be replaced when dependencies are built.
