file(REMOVE_RECURSE
  "CMakeFiles/predbus_sim.dir/bpred.cpp.o"
  "CMakeFiles/predbus_sim.dir/bpred.cpp.o.d"
  "CMakeFiles/predbus_sim.dir/cache.cpp.o"
  "CMakeFiles/predbus_sim.dir/cache.cpp.o.d"
  "CMakeFiles/predbus_sim.dir/functional.cpp.o"
  "CMakeFiles/predbus_sim.dir/functional.cpp.o.d"
  "CMakeFiles/predbus_sim.dir/machine.cpp.o"
  "CMakeFiles/predbus_sim.dir/machine.cpp.o.d"
  "CMakeFiles/predbus_sim.dir/memory.cpp.o"
  "CMakeFiles/predbus_sim.dir/memory.cpp.o.d"
  "libpredbus_sim.a"
  "libpredbus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
