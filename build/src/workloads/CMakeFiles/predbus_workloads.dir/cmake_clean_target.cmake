file(REMOVE_RECURSE
  "libpredbus_workloads.a"
)
