# Empty compiler generated dependencies file for predbus_workloads.
# This may be replaced when dependencies are built.
