
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/applu.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/applu.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/applu.cpp.o.d"
  "/root/repo/src/workloads/apsi.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/apsi.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/apsi.cpp.o.d"
  "/root/repo/src/workloads/compress.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/compress.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/compress.cpp.o.d"
  "/root/repo/src/workloads/data_gen.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/data_gen.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/data_gen.cpp.o.d"
  "/root/repo/src/workloads/fpppp.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/fpppp.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/fpppp.cpp.o.d"
  "/root/repo/src/workloads/gcc.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/gcc.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/gcc.cpp.o.d"
  "/root/repo/src/workloads/go.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/go.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/go.cpp.o.d"
  "/root/repo/src/workloads/hydro2d.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/hydro2d.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/hydro2d.cpp.o.d"
  "/root/repo/src/workloads/ijpeg.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/ijpeg.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/ijpeg.cpp.o.d"
  "/root/repo/src/workloads/li.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/li.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/li.cpp.o.d"
  "/root/repo/src/workloads/m88ksim.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/m88ksim.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/m88ksim.cpp.o.d"
  "/root/repo/src/workloads/mgrid.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/mgrid.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/mgrid.cpp.o.d"
  "/root/repo/src/workloads/perl.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/perl.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/perl.cpp.o.d"
  "/root/repo/src/workloads/su2cor.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/su2cor.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/su2cor.cpp.o.d"
  "/root/repo/src/workloads/swim.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/swim.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/swim.cpp.o.d"
  "/root/repo/src/workloads/tomcatv.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/tomcatv.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/tomcatv.cpp.o.d"
  "/root/repo/src/workloads/turb3d.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/turb3d.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/turb3d.cpp.o.d"
  "/root/repo/src/workloads/wave5.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/wave5.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/wave5.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/predbus_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/predbus_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/predbus_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/predbus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
