file(REMOVE_RECURSE
  "CMakeFiles/predbus_analysis.dir/energy_eval.cpp.o"
  "CMakeFiles/predbus_analysis.dir/energy_eval.cpp.o.d"
  "CMakeFiles/predbus_analysis.dir/suite.cpp.o"
  "CMakeFiles/predbus_analysis.dir/suite.cpp.o.d"
  "libpredbus_analysis.a"
  "libpredbus_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
