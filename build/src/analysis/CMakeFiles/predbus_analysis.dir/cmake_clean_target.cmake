file(REMOVE_RECURSE
  "libpredbus_analysis.a"
)
