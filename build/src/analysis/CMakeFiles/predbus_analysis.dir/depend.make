# Empty dependencies file for predbus_analysis.
# This may be replaced when dependencies are built.
