
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/energy_eval.cpp" "src/analysis/CMakeFiles/predbus_analysis.dir/energy_eval.cpp.o" "gcc" "src/analysis/CMakeFiles/predbus_analysis.dir/energy_eval.cpp.o.d"
  "/root/repo/src/analysis/suite.cpp" "src/analysis/CMakeFiles/predbus_analysis.dir/suite.cpp.o" "gcc" "src/analysis/CMakeFiles/predbus_analysis.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/predbus_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/predbus_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/wires/CMakeFiles/predbus_wires.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/predbus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/predbus_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/predbus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/predbus_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/predbus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
