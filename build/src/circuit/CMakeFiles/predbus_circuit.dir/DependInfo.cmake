
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit_tech.cpp" "src/circuit/CMakeFiles/predbus_circuit.dir/circuit_tech.cpp.o" "gcc" "src/circuit/CMakeFiles/predbus_circuit.dir/circuit_tech.cpp.o.d"
  "/root/repo/src/circuit/netlist_sim.cpp" "src/circuit/CMakeFiles/predbus_circuit.dir/netlist_sim.cpp.o" "gcc" "src/circuit/CMakeFiles/predbus_circuit.dir/netlist_sim.cpp.o.d"
  "/root/repo/src/circuit/transcoder_impl.cpp" "src/circuit/CMakeFiles/predbus_circuit.dir/transcoder_impl.cpp.o" "gcc" "src/circuit/CMakeFiles/predbus_circuit.dir/transcoder_impl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coding/CMakeFiles/predbus_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/predbus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
