file(REMOVE_RECURSE
  "CMakeFiles/predbus_circuit.dir/circuit_tech.cpp.o"
  "CMakeFiles/predbus_circuit.dir/circuit_tech.cpp.o.d"
  "CMakeFiles/predbus_circuit.dir/netlist_sim.cpp.o"
  "CMakeFiles/predbus_circuit.dir/netlist_sim.cpp.o.d"
  "CMakeFiles/predbus_circuit.dir/transcoder_impl.cpp.o"
  "CMakeFiles/predbus_circuit.dir/transcoder_impl.cpp.o.d"
  "libpredbus_circuit.a"
  "libpredbus_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
