# Empty dependencies file for predbus_circuit.
# This may be replaced when dependencies are built.
