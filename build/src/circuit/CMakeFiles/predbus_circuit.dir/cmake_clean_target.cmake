file(REMOVE_RECURSE
  "libpredbus_circuit.a"
)
