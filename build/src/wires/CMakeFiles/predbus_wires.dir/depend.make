# Empty dependencies file for predbus_wires.
# This may be replaced when dependencies are built.
