file(REMOVE_RECURSE
  "libpredbus_wires.a"
)
