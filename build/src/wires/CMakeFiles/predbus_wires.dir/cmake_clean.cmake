file(REMOVE_RECURSE
  "CMakeFiles/predbus_wires.dir/technology.cpp.o"
  "CMakeFiles/predbus_wires.dir/technology.cpp.o.d"
  "CMakeFiles/predbus_wires.dir/wire_model.cpp.o"
  "CMakeFiles/predbus_wires.dir/wire_model.cpp.o.d"
  "libpredbus_wires.a"
  "libpredbus_wires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus_wires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
