
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/bus_energy.cpp" "src/coding/CMakeFiles/predbus_coding.dir/bus_energy.cpp.o" "gcc" "src/coding/CMakeFiles/predbus_coding.dir/bus_energy.cpp.o.d"
  "/root/repo/src/coding/context.cpp" "src/coding/CMakeFiles/predbus_coding.dir/context.cpp.o" "gcc" "src/coding/CMakeFiles/predbus_coding.dir/context.cpp.o.d"
  "/root/repo/src/coding/factory.cpp" "src/coding/CMakeFiles/predbus_coding.dir/factory.cpp.o" "gcc" "src/coding/CMakeFiles/predbus_coding.dir/factory.cpp.o.d"
  "/root/repo/src/coding/inversion.cpp" "src/coding/CMakeFiles/predbus_coding.dir/inversion.cpp.o" "gcc" "src/coding/CMakeFiles/predbus_coding.dir/inversion.cpp.o.d"
  "/root/repo/src/coding/partial_invert.cpp" "src/coding/CMakeFiles/predbus_coding.dir/partial_invert.cpp.o" "gcc" "src/coding/CMakeFiles/predbus_coding.dir/partial_invert.cpp.o.d"
  "/root/repo/src/coding/protocol.cpp" "src/coding/CMakeFiles/predbus_coding.dir/protocol.cpp.o" "gcc" "src/coding/CMakeFiles/predbus_coding.dir/protocol.cpp.o.d"
  "/root/repo/src/coding/spatial.cpp" "src/coding/CMakeFiles/predbus_coding.dir/spatial.cpp.o" "gcc" "src/coding/CMakeFiles/predbus_coding.dir/spatial.cpp.o.d"
  "/root/repo/src/coding/stride.cpp" "src/coding/CMakeFiles/predbus_coding.dir/stride.cpp.o" "gcc" "src/coding/CMakeFiles/predbus_coding.dir/stride.cpp.o.d"
  "/root/repo/src/coding/window.cpp" "src/coding/CMakeFiles/predbus_coding.dir/window.cpp.o" "gcc" "src/coding/CMakeFiles/predbus_coding.dir/window.cpp.o.d"
  "/root/repo/src/coding/workzone.cpp" "src/coding/CMakeFiles/predbus_coding.dir/workzone.cpp.o" "gcc" "src/coding/CMakeFiles/predbus_coding.dir/workzone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/predbus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
