file(REMOVE_RECURSE
  "libpredbus_coding.a"
)
