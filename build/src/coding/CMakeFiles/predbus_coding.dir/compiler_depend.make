# Empty compiler generated dependencies file for predbus_coding.
# This may be replaced when dependencies are built.
