file(REMOVE_RECURSE
  "CMakeFiles/predbus_coding.dir/bus_energy.cpp.o"
  "CMakeFiles/predbus_coding.dir/bus_energy.cpp.o.d"
  "CMakeFiles/predbus_coding.dir/context.cpp.o"
  "CMakeFiles/predbus_coding.dir/context.cpp.o.d"
  "CMakeFiles/predbus_coding.dir/factory.cpp.o"
  "CMakeFiles/predbus_coding.dir/factory.cpp.o.d"
  "CMakeFiles/predbus_coding.dir/inversion.cpp.o"
  "CMakeFiles/predbus_coding.dir/inversion.cpp.o.d"
  "CMakeFiles/predbus_coding.dir/partial_invert.cpp.o"
  "CMakeFiles/predbus_coding.dir/partial_invert.cpp.o.d"
  "CMakeFiles/predbus_coding.dir/protocol.cpp.o"
  "CMakeFiles/predbus_coding.dir/protocol.cpp.o.d"
  "CMakeFiles/predbus_coding.dir/spatial.cpp.o"
  "CMakeFiles/predbus_coding.dir/spatial.cpp.o.d"
  "CMakeFiles/predbus_coding.dir/stride.cpp.o"
  "CMakeFiles/predbus_coding.dir/stride.cpp.o.d"
  "CMakeFiles/predbus_coding.dir/window.cpp.o"
  "CMakeFiles/predbus_coding.dir/window.cpp.o.d"
  "CMakeFiles/predbus_coding.dir/workzone.cpp.o"
  "CMakeFiles/predbus_coding.dir/workzone.cpp.o.d"
  "libpredbus_coding.a"
  "libpredbus_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
