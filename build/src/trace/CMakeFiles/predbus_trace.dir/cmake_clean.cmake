file(REMOVE_RECURSE
  "CMakeFiles/predbus_trace.dir/trace.cpp.o"
  "CMakeFiles/predbus_trace.dir/trace.cpp.o.d"
  "CMakeFiles/predbus_trace.dir/trace_io.cpp.o"
  "CMakeFiles/predbus_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/predbus_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/predbus_trace.dir/trace_stats.cpp.o.d"
  "libpredbus_trace.a"
  "libpredbus_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
