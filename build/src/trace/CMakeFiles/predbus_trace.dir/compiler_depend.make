# Empty compiler generated dependencies file for predbus_trace.
# This may be replaced when dependencies are built.
