file(REMOVE_RECURSE
  "libpredbus_trace.a"
)
