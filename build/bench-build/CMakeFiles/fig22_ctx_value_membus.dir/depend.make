# Empty dependencies file for fig22_ctx_value_membus.
# This may be replaced when dependencies are built.
