file(REMOVE_RECURSE
  "../bench/fig22_ctx_value_membus"
  "../bench/fig22_ctx_value_membus.pdb"
  "CMakeFiles/fig22_ctx_value_membus.dir/fig22_ctx_value_membus.cpp.o"
  "CMakeFiles/fig22_ctx_value_membus.dir/fig22_ctx_value_membus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_ctx_value_membus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
