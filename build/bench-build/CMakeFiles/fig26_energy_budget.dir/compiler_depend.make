# Empty compiler generated dependencies file for fig26_energy_budget.
# This may be replaced when dependencies are built.
