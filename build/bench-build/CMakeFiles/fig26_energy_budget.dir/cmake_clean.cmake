file(REMOVE_RECURSE
  "../bench/fig26_energy_budget"
  "../bench/fig26_energy_budget.pdb"
  "CMakeFiles/fig26_energy_budget.dir/fig26_energy_budget.cpp.o"
  "CMakeFiles/fig26_energy_budget.dir/fig26_energy_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_energy_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
