# Empty compiler generated dependencies file for fig25_ctx_divide.
# This may be replaced when dependencies are built.
