file(REMOVE_RECURSE
  "../bench/fig25_ctx_divide"
  "../bench/fig25_ctx_divide.pdb"
  "CMakeFiles/fig25_ctx_divide.dir/fig25_ctx_divide.cpp.o"
  "CMakeFiles/fig25_ctx_divide.dir/fig25_ctx_divide.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_ctx_divide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
