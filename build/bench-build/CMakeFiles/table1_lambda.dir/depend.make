# Empty dependencies file for table1_lambda.
# This may be replaced when dependencies are built.
