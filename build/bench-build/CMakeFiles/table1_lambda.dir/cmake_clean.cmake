file(REMOVE_RECURSE
  "../bench/table1_lambda"
  "../bench/table1_lambda.pdb"
  "CMakeFiles/table1_lambda.dir/table1_lambda.cpp.o"
  "CMakeFiles/table1_lambda.dir/table1_lambda.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
