file(REMOVE_RECURSE
  "../bench/table2_transcoder_impl"
  "../bench/table2_transcoder_impl.pdb"
  "CMakeFiles/table2_transcoder_impl.dir/table2_transcoder_impl.cpp.o"
  "CMakeFiles/table2_transcoder_impl.dir/table2_transcoder_impl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_transcoder_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
