# Empty dependencies file for table2_transcoder_impl.
# This may be replaced when dependencies are built.
