# Empty dependencies file for fig19_window_regbus.
# This may be replaced when dependencies are built.
