file(REMOVE_RECURSE
  "../bench/fig19_window_regbus"
  "../bench/fig19_window_regbus.pdb"
  "CMakeFiles/fig19_window_regbus.dir/fig19_window_regbus.cpp.o"
  "CMakeFiles/fig19_window_regbus.dir/fig19_window_regbus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_window_regbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
