file(REMOVE_RECURSE
  "../bench/table3_crossover_medians"
  "../bench/table3_crossover_medians.pdb"
  "CMakeFiles/table3_crossover_medians.dir/table3_crossover_medians.cpp.o"
  "CMakeFiles/table3_crossover_medians.dir/table3_crossover_medians.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_crossover_medians.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
