# Empty dependencies file for table3_crossover_medians.
# This may be replaced when dependencies are built.
