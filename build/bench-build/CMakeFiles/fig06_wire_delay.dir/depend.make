# Empty dependencies file for fig06_wire_delay.
# This may be replaced when dependencies are built.
