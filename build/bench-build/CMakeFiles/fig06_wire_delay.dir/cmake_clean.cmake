file(REMOVE_RECURSE
  "../bench/fig06_wire_delay"
  "../bench/fig06_wire_delay.pdb"
  "CMakeFiles/fig06_wire_delay.dir/fig06_wire_delay.cpp.o"
  "CMakeFiles/fig06_wire_delay.dir/fig06_wire_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_wire_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
