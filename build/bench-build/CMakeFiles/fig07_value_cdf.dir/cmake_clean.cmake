file(REMOVE_RECURSE
  "../bench/fig07_value_cdf"
  "../bench/fig07_value_cdf.pdb"
  "CMakeFiles/fig07_value_cdf.dir/fig07_value_cdf.cpp.o"
  "CMakeFiles/fig07_value_cdf.dir/fig07_value_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_value_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
