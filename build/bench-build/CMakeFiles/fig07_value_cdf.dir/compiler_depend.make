# Empty compiler generated dependencies file for fig07_value_cdf.
# This may be replaced when dependencies are built.
