file(REMOVE_RECURSE
  "../bench/fig21_ctx_trans_regbus"
  "../bench/fig21_ctx_trans_regbus.pdb"
  "CMakeFiles/fig21_ctx_trans_regbus.dir/fig21_ctx_trans_regbus.cpp.o"
  "CMakeFiles/fig21_ctx_trans_regbus.dir/fig21_ctx_trans_regbus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_ctx_trans_regbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
