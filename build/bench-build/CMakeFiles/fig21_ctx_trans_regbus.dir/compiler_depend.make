# Empty compiler generated dependencies file for fig21_ctx_trans_regbus.
# This may be replaced when dependencies are built.
