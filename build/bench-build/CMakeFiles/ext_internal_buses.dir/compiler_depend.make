# Empty compiler generated dependencies file for ext_internal_buses.
# This may be replaced when dependencies are built.
