file(REMOVE_RECURSE
  "../bench/ext_internal_buses"
  "../bench/ext_internal_buses.pdb"
  "CMakeFiles/ext_internal_buses.dir/ext_internal_buses.cpp.o"
  "CMakeFiles/ext_internal_buses.dir/ext_internal_buses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_internal_buses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
