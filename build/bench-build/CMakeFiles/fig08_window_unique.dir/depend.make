# Empty dependencies file for fig08_window_unique.
# This may be replaced when dependencies are built.
