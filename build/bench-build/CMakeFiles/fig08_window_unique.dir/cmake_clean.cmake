file(REMOVE_RECURSE
  "../bench/fig08_window_unique"
  "../bench/fig08_window_unique.pdb"
  "CMakeFiles/fig08_window_unique.dir/fig08_window_unique.cpp.o"
  "CMakeFiles/fig08_window_unique.dir/fig08_window_unique.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_window_unique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
