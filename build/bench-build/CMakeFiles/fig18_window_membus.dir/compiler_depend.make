# Empty compiler generated dependencies file for fig18_window_membus.
# This may be replaced when dependencies are built.
