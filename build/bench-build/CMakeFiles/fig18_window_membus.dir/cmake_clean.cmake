file(REMOVE_RECURSE
  "../bench/fig18_window_membus"
  "../bench/fig18_window_membus.pdb"
  "CMakeFiles/fig18_window_membus.dir/fig18_window_membus.cpp.o"
  "CMakeFiles/fig18_window_membus.dir/fig18_window_membus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_window_membus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
