file(REMOVE_RECURSE
  "CMakeFiles/predbus_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/predbus_bench_common.dir/bench_common.cpp.o.d"
  "libpredbus_bench_common.a"
  "libpredbus_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predbus_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
