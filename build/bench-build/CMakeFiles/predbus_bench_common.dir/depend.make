# Empty dependencies file for predbus_bench_common.
# This may be replaced when dependencies are built.
