file(REMOVE_RECURSE
  "libpredbus_bench_common.a"
)
