# Empty dependencies file for ablation_costaware.
# This may be replaced when dependencies are built.
