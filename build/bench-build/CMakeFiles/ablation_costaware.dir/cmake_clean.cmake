file(REMOVE_RECURSE
  "../bench/ablation_costaware"
  "../bench/ablation_costaware.pdb"
  "CMakeFiles/ablation_costaware.dir/ablation_costaware.cpp.o"
  "CMakeFiles/ablation_costaware.dir/ablation_costaware.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_costaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
