file(REMOVE_RECURSE
  "../bench/ablation_sorting"
  "../bench/ablation_sorting.pdb"
  "CMakeFiles/ablation_sorting.dir/ablation_sorting.cpp.o"
  "CMakeFiles/ablation_sorting.dir/ablation_sorting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
