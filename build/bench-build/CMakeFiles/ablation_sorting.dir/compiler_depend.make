# Empty compiler generated dependencies file for ablation_sorting.
# This may be replaced when dependencies are built.
