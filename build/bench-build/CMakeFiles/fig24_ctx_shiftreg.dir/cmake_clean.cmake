file(REMOVE_RECURSE
  "../bench/fig24_ctx_shiftreg"
  "../bench/fig24_ctx_shiftreg.pdb"
  "CMakeFiles/fig24_ctx_shiftreg.dir/fig24_ctx_shiftreg.cpp.o"
  "CMakeFiles/fig24_ctx_shiftreg.dir/fig24_ctx_shiftreg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_ctx_shiftreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
