# Empty dependencies file for fig24_ctx_shiftreg.
# This may be replaced when dependencies are built.
