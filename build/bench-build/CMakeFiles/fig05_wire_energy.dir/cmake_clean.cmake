file(REMOVE_RECURSE
  "../bench/fig05_wire_energy"
  "../bench/fig05_wire_energy.pdb"
  "CMakeFiles/fig05_wire_energy.dir/fig05_wire_energy.cpp.o"
  "CMakeFiles/fig05_wire_energy.dir/fig05_wire_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_wire_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
