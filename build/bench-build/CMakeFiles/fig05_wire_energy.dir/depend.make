# Empty dependencies file for fig05_wire_energy.
# This may be replaced when dependencies are built.
