# Empty compiler generated dependencies file for fig37_crossover_regbus.
# This may be replaced when dependencies are built.
