file(REMOVE_RECURSE
  "../bench/fig37_crossover_regbus"
  "../bench/fig37_crossover_regbus.pdb"
  "CMakeFiles/fig37_crossover_regbus.dir/fig37_crossover_regbus.cpp.o"
  "CMakeFiles/fig37_crossover_regbus.dir/fig37_crossover_regbus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig37_crossover_regbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
