# Empty compiler generated dependencies file for fig23_ctx_value_regbus.
# This may be replaced when dependencies are built.
