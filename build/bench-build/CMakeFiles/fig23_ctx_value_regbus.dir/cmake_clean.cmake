file(REMOVE_RECURSE
  "../bench/fig23_ctx_value_regbus"
  "../bench/fig23_ctx_value_regbus.pdb"
  "CMakeFiles/fig23_ctx_value_regbus.dir/fig23_ctx_value_regbus.cpp.o"
  "CMakeFiles/fig23_ctx_value_regbus.dir/fig23_ctx_value_regbus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_ctx_value_regbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
