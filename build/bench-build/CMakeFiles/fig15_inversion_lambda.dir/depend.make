# Empty dependencies file for fig15_inversion_lambda.
# This may be replaced when dependencies are built.
