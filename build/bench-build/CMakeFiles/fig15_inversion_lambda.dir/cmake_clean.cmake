file(REMOVE_RECURSE
  "../bench/fig15_inversion_lambda"
  "../bench/fig15_inversion_lambda.pdb"
  "CMakeFiles/fig15_inversion_lambda.dir/fig15_inversion_lambda.cpp.o"
  "CMakeFiles/fig15_inversion_lambda.dir/fig15_inversion_lambda.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_inversion_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
