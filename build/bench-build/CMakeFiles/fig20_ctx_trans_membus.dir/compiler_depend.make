# Empty compiler generated dependencies file for fig20_ctx_trans_membus.
# This may be replaced when dependencies are built.
