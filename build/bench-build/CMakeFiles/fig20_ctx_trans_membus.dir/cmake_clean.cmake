file(REMOVE_RECURSE
  "../bench/fig20_ctx_trans_membus"
  "../bench/fig20_ctx_trans_membus.pdb"
  "CMakeFiles/fig20_ctx_trans_membus.dir/fig20_ctx_trans_membus.cpp.o"
  "CMakeFiles/fig20_ctx_trans_membus.dir/fig20_ctx_trans_membus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_ctx_trans_membus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
