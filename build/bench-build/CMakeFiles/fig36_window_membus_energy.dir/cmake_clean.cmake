file(REMOVE_RECURSE
  "../bench/fig36_window_membus_energy"
  "../bench/fig36_window_membus_energy.pdb"
  "CMakeFiles/fig36_window_membus_energy.dir/fig36_window_membus_energy.cpp.o"
  "CMakeFiles/fig36_window_membus_energy.dir/fig36_window_membus_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig36_window_membus_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
