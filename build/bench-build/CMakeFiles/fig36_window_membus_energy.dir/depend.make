# Empty dependencies file for fig36_window_membus_energy.
# This may be replaced when dependencies are built.
