# Empty dependencies file for fig35_window_regbus_energy.
# This may be replaced when dependencies are built.
