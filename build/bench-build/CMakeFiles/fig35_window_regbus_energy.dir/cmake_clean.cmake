file(REMOVE_RECURSE
  "../bench/fig35_window_regbus_energy"
  "../bench/fig35_window_regbus_energy.pdb"
  "CMakeFiles/fig35_window_regbus_energy.dir/fig35_window_regbus_energy.cpp.o"
  "CMakeFiles/fig35_window_regbus_energy.dir/fig35_window_regbus_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig35_window_regbus_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
