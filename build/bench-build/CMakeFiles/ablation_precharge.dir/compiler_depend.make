# Empty compiler generated dependencies file for ablation_precharge.
# This may be replaced when dependencies are built.
