file(REMOVE_RECURSE
  "../bench/ablation_precharge"
  "../bench/ablation_precharge.pdb"
  "CMakeFiles/ablation_precharge.dir/ablation_precharge.cpp.o"
  "CMakeFiles/ablation_precharge.dir/ablation_precharge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_precharge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
