# Empty compiler generated dependencies file for ablation_varlen.
# This may be replaced when dependencies are built.
