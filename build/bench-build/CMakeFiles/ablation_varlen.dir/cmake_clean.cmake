file(REMOVE_RECURSE
  "../bench/ablation_varlen"
  "../bench/ablation_varlen.pdb"
  "CMakeFiles/ablation_varlen.dir/ablation_varlen.cpp.o"
  "CMakeFiles/ablation_varlen.dir/ablation_varlen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_varlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
