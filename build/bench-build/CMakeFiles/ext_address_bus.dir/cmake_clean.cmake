file(REMOVE_RECURSE
  "../bench/ext_address_bus"
  "../bench/ext_address_bus.pdb"
  "CMakeFiles/ext_address_bus.dir/ext_address_bus.cpp.o"
  "CMakeFiles/ext_address_bus.dir/ext_address_bus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_address_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
