# Empty compiler generated dependencies file for ext_address_bus.
# This may be replaced when dependencies are built.
