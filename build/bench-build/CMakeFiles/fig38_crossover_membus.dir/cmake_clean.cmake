file(REMOVE_RECURSE
  "../bench/fig38_crossover_membus"
  "../bench/fig38_crossover_membus.pdb"
  "CMakeFiles/fig38_crossover_membus.dir/fig38_crossover_membus.cpp.o"
  "CMakeFiles/fig38_crossover_membus.dir/fig38_crossover_membus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig38_crossover_membus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
