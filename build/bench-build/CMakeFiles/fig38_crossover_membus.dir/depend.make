# Empty dependencies file for fig38_crossover_membus.
# This may be replaced when dependencies are built.
