# Empty dependencies file for fig17_stride_regbus.
# This may be replaced when dependencies are built.
