file(REMOVE_RECURSE
  "../bench/fig17_stride_regbus"
  "../bench/fig17_stride_regbus.pdb"
  "CMakeFiles/fig17_stride_regbus.dir/fig17_stride_regbus.cpp.o"
  "CMakeFiles/fig17_stride_regbus.dir/fig17_stride_regbus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_stride_regbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
