file(REMOVE_RECURSE
  "../bench/fig16_stride_membus"
  "../bench/fig16_stride_membus.pdb"
  "CMakeFiles/fig16_stride_membus.dir/fig16_stride_membus.cpp.o"
  "CMakeFiles/fig16_stride_membus.dir/fig16_stride_membus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_stride_membus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
