# Empty compiler generated dependencies file for fig16_stride_membus.
# This may be replaced when dependencies are built.
