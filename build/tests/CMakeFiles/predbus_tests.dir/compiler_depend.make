# Empty compiler generated dependencies file for predbus_tests.
# This may be replaced when dependencies are built.
