
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/predbus_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_asm_parser.cpp" "tests/CMakeFiles/predbus_tests.dir/test_asm_parser.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_asm_parser.cpp.o.d"
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/predbus_tests.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_bitops.cpp" "tests/CMakeFiles/predbus_tests.dir/test_bitops.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_bitops.cpp.o.d"
  "/root/repo/tests/test_bpred.cpp" "tests/CMakeFiles/predbus_tests.dir/test_bpred.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_bpred.cpp.o.d"
  "/root/repo/tests/test_bus_semantics.cpp" "tests/CMakeFiles/predbus_tests.dir/test_bus_semantics.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_bus_semantics.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/predbus_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_circuit.cpp" "tests/CMakeFiles/predbus_tests.dir/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_circuit.cpp.o.d"
  "/root/repo/tests/test_coding_energy.cpp" "tests/CMakeFiles/predbus_tests.dir/test_coding_energy.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_coding_energy.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/predbus_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_functional.cpp" "tests/CMakeFiles/predbus_tests.dir/test_functional.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_functional.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/predbus_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_isa_encoding.cpp" "tests/CMakeFiles/predbus_tests.dir/test_isa_encoding.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_isa_encoding.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/predbus_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_machine_configs.cpp" "tests/CMakeFiles/predbus_tests.dir/test_machine_configs.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_machine_configs.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/predbus_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_related_work.cpp" "tests/CMakeFiles/predbus_tests.dir/test_related_work.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_related_work.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/predbus_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/predbus_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/predbus_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/predbus_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_character.cpp" "tests/CMakeFiles/predbus_tests.dir/test_trace_character.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_trace_character.cpp.o.d"
  "/root/repo/tests/test_transcoders.cpp" "tests/CMakeFiles/predbus_tests.dir/test_transcoders.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_transcoders.cpp.o.d"
  "/root/repo/tests/test_wires.cpp" "tests/CMakeFiles/predbus_tests.dir/test_wires.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_wires.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/predbus_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/predbus_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/predbus_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/predbus_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/predbus_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/wires/CMakeFiles/predbus_wires.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/predbus_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/predbus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/predbus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/predbus_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/predbus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
