# Empty compiler generated dependencies file for sorting_walkthrough.
# This may be replaced when dependencies are built.
