file(REMOVE_RECURSE
  "CMakeFiles/sorting_walkthrough.dir/sorting_walkthrough.cpp.o"
  "CMakeFiles/sorting_walkthrough.dir/sorting_walkthrough.cpp.o.d"
  "sorting_walkthrough"
  "sorting_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorting_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
