file(REMOVE_RECURSE
  "CMakeFiles/bus_explorer.dir/bus_explorer.cpp.o"
  "CMakeFiles/bus_explorer.dir/bus_explorer.cpp.o.d"
  "bus_explorer"
  "bus_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
