# Empty dependencies file for bus_explorer.
# This may be replaced when dependencies are built.
